//! Proxy generation: Algorithms 1 and 2 of the paper.
//!
//! From nothing but a [`GmapProfile`], regenerate per-warp transaction
//! streams whose locality statistics match the original application:
//!
//! - **Algorithm 1** (per-warp trace generation): the *first* execution of
//!   each static instruction chains off the shared base address through the
//!   inter-thread stride distribution `P_E` — reproducing the inter-warp
//!   regularity of §4.2. Later executions first try to satisfy a sampled
//!   reuse distance (if the implied jump lies in the support of the
//!   intra-stride distribution `P_A`), otherwise they advance by a sampled
//!   intra-thread stride — reproducing §4.3.
//! - **Algorithm 2** (proxy assembly): every warp samples its π profile
//!   from `(Π, Q)`, generates its trace, and is grouped into threadblocks
//!   and warps per the Fermi model; the per-core warp queues and the
//!   scheduling policy then interleave the streams (that part lives in
//!   [`gmap_gpu::schedule`] and is driven by [`crate::model`]).

use crate::profile::{GmapProfile, PiEntry};
use gmap_gpu::schedule::{CoalescedAccess, WarpStream, WarpStreamEvent};
use gmap_trace::record::{ByteAddr, WarpId};
use gmap_trace::rng::Rng;
use gmap_trace::HistSampler;

/// Generates the clone's per-warp transaction streams (Algorithm 2,
/// lines 3–10).
///
/// The number of warps, their block grouping and the warp size all come
/// from the profile's launch geometry — G-MAP "maintains the same grid and
/// TB dimensions as the original application" (§4). Identical `(profile,
/// seed)` inputs produce identical clones.
pub fn generate_streams(profile: &GmapProfile, seed: u64) -> Vec<WarpStream> {
    let n_slots = profile.num_slots();
    let line = profile.line_size;
    // Samplers are immutable snapshots; build once.
    let q_sampler = profile.profile_weights.sampler();
    let inter: Vec<HistSampler<i64>> = profile.inter_stride.iter().map(|h| h.sampler()).collect();
    let intra: Vec<HistSampler<i64>> = profile.intra_stride.iter().map(|h| h.sampler()).collect();
    let txn: Vec<HistSampler<u32>> = profile.txn_count.iter().map(|h| h.sampler()).collect();
    let span: Vec<HistSampler<u64>> = profile.txn_span.iter().map(|h| h.sampler()).collect();
    let reuse: Vec<HistSampler<u64>> = profile
        .reuse
        .iter()
        .map(|r| r.distances().sampler())
        .collect();
    let pc_reuse: Vec<HistSampler<u32>> = profile.pc_reuse.iter().map(|h| h.sampler()).collect();

    let mut rng = Rng::seed_from(seed ^ 0x6AA9_0000_CAFE);
    let total_warps = profile.launch.total_warps(profile.warp_size);
    let warps_per_block = profile.launch.warps_per_block(profile.warp_size);
    // Global base-address state b(k), shared across warps (Algorithm 1,
    // line 9 updates it so the next warp chains from this one).
    let mut b_global: Vec<u64> = profile.base_addrs.iter().map(|b| b.0).collect();

    let mut streams = Vec::with_capacity(total_warps as usize);
    for w in 0..total_warps {
        // Algorithm 2 line 5: sample π_i from Π with respect to Q.
        let pi_idx = q_sampler.sample(&mut rng).unwrap_or(0);
        let pi = &profile.profiles[pi_idx];

        // Algorithm 1 for this warp.
        let mut b_local: Vec<u64> = vec![0; n_slots];
        let mut first_done = vec![false; n_slots];
        let mut t_addrs: Vec<u64> = Vec::with_capacity(pi.num_accesses());
        // Per-slot address history for the PC-localized reuse extension.
        let mut slot_hist: Vec<Vec<u64>> = vec![Vec::new(); n_slots];
        let mut events = Vec::with_capacity(pi.entries.len());
        for entry in &pi.entries {
            let k = match entry {
                PiEntry::Sync => {
                    events.push(WarpStreamEvent::Sync);
                    continue;
                }
                PiEntry::Mem(k) => *k,
            };
            let addr = if !first_done[k] {
                // First execution: chain from the shared base through P_E,
                // preferring the structural block-phase stride where one
                // exists (block-boundary discontinuities repeat with the
                // block period).
                let phase = &profile.inter_stride_phase[k];
                let offset = phase
                    .get(w as usize % phase.len().max(1))
                    .copied()
                    .flatten()
                    .or_else(|| inter[k].sample(&mut rng))
                    .unwrap_or(0);
                let a = align(b_global[k].saturating_add_signed(offset), line);
                b_global[k] = a;
                b_local[k] = a;
                first_done[k] = true;
                a
            } else {
                // PC-localized reuse extension: revisit the address this
                // instruction touched `v` of its own executions ago. The
                // modal per-ordinal schedule places structural rewinds at
                // the position every warp performs them; ordinals beyond
                // the schedule sample the marginal distribution.
                let exec_idx = slot_hist[k].len(); // >= 1 on this path
                let sched = &profile.pc_reuse_schedule[k];
                let v = sched
                    .get(exec_idx - 1)
                    .copied()
                    .flatten()
                    .or_else(|| pc_reuse[k].sample(&mut rng));
                let pc_reused = v.and_then(|v| {
                    let h = &slot_hist[k];
                    (v > 0 && h.len() >= v as usize).then(|| h[h.len() - v as usize])
                });
                // Paper's reuse-distance satisfaction (lines 11–13).
                let reused = pc_reused.or_else(|| {
                    reuse[pi_idx].sample(&mut rng).and_then(|r| {
                        let j = t_addrs.len();
                        let back = r as usize + 1;
                        if back > j {
                            return None;
                        }
                        let cand = t_addrs[j - back];
                        let prev = t_addrs[j - 1];
                        let diff = cand as i64 - prev as i64;
                        profile.intra_stride[k].contains(diff).then_some(cand)
                    })
                });
                let a = match reused {
                    Some(a) => a,
                    None => {
                        // Fall back to an intra-thread stride (lines
                        // 15–17), structural-first: where every warp
                        // strides identically at this ordinal, replay that
                        // stride; otherwise sample the marginal.
                        let stride = profile.intra_stride_schedule[k]
                            .get(exec_idx - 1)
                            .copied()
                            .flatten()
                            .or_else(|| intra[k].sample(&mut rng))
                            .unwrap_or(0);
                        align(b_local[k].saturating_add_signed(stride), line)
                    }
                };
                // The stride anchor tracks the last address of this
                // instruction even after a reuse — P_A is measured between
                // *successive* executions, so the next stride must apply
                // from wherever this execution landed. (The paper's
                // pseudocode leaves b'(k) untouched on the reuse path,
                // which makes multi-pass kernels walk out of their
                // regions; see DESIGN.md.)
                b_local[k] = a;
                a
            };
            // Reproduce the coalescing behaviour: divergent instructions
            // emit several transactions spread over a sampled span with
            // jittered gaps — consecutive when the original was strided
            // (span = n−1), scattered when it was an irregular gather.
            let n_txn = txn[k].sample(&mut rng).unwrap_or(1).max(1) as u64;
            let lines = if n_txn == 1 {
                vec![ByteAddr(addr)]
            } else {
                let spread = span[k].sample(&mut rng).unwrap_or(n_txn - 1).max(n_txn - 1);
                let step = spread / (n_txn - 1);
                let jitter = step / 2;
                let mut lines = Vec::with_capacity(n_txn as usize);
                let mut pos = 0u64;
                for i in 0..n_txn {
                    let j = if jitter > 0 {
                        rng.gen_range(jitter + 1)
                    } else {
                        0
                    };
                    lines.push(ByteAddr(addr + (pos + j) * line));
                    pos += step.max(1);
                    let _ = i;
                }
                lines.dedup();
                lines
            };
            events.push(WarpStreamEvent::Access(CoalescedAccess {
                pc: profile.pcs[k],
                kind: profile.kinds[k],
                lines,
            }));
            t_addrs.push(addr);
            slot_hist[k].push(addr);
        }
        streams.push(WarpStream {
            warp: WarpId(w),
            block: w / warps_per_block.max(1),
            events,
        });
    }
    streams
}

#[inline]
fn align(addr: u64, line: u64) -> u64 {
    addr & !(line - 1)
}

/// Total warp-level memory accesses a clone of this profile will contain.
pub fn expected_accesses(profile: &GmapProfile) -> u64 {
    let total_warps = profile.launch.total_warps(profile.warp_size) as u64;
    // Expected accesses per warp = weighted mean profile length.
    let total_weight = profile.profile_weights.total().max(1);
    let weighted: u64 = profile
        .profiles
        .iter()
        .enumerate()
        .map(|(i, p)| profile.profile_weights.count_of(i) * p.num_accesses() as u64)
        .sum();
    total_warps * weighted / total_weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{profile_kernel, ProfilerConfig};
    use gmap_gpu::kernel::{dsl, IndexExpr, KernelBuilder, Stmt};
    use gmap_gpu::workloads::{self, Scale};
    use gmap_trace::record::Pc;
    use gmap_trace::reuse::ReuseHistogram;
    use gmap_trace::Histogram;

    fn kernel_profile() -> GmapProfile {
        let k = KernelBuilder::new("gen", 4u32, 64u32)
            .array("a", 1 << 18)
            .stmt(dsl::loop_n(
                8,
                vec![dsl::read(0x10, 0, dsl::affine(0, 1, vec![(0, 1024)]))],
            ))
            .write(Pc(0x20), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        profile_kernel(&k, &ProfilerConfig::default())
    }

    #[test]
    fn clone_has_original_shape() {
        let p = kernel_profile();
        let streams = generate_streams(&p, 7);
        assert_eq!(streams.len(), 8); // 4 blocks x 2 warps
        for s in &streams {
            assert_eq!(s.num_accesses(), 9); // 8 loop reads + 1 write
        }
        assert_eq!(expected_accesses(&p), 8 * 9);
    }

    #[test]
    fn clone_reproduces_inter_warp_stride() {
        let p = kernel_profile();
        let streams = generate_streams(&p, 7);
        // First access per warp at PC 0x10 must stride by 128 B.
        let firsts: Vec<u64> = streams
            .iter()
            .map(|s| match &s.events[0] {
                WarpStreamEvent::Access(a) => a.lines[0].0,
                WarpStreamEvent::Sync => panic!("expected access"),
            })
            .collect();
        let mut strides = Histogram::new();
        for w in firsts.windows(2) {
            strides.add(w[1] as i64 - w[0] as i64);
        }
        assert_eq!(strides.dominant().expect("non-empty").0, 128);
    }

    #[test]
    fn clone_reproduces_intra_warp_stride() {
        let p = kernel_profile();
        let streams = generate_streams(&p, 7);
        let s0 = &streams[0];
        let addrs: Vec<u64> = s0
            .events
            .iter()
            .filter_map(|e| match e {
                WarpStreamEvent::Access(a) if a.pc == Pc(0x10) => Some(a.lines[0].0),
                _ => None,
            })
            .collect();
        let mut strides = Histogram::new();
        for w in addrs.windows(2) {
            strides.add(w[1] as i64 - w[0] as i64);
        }
        assert_eq!(strides.dominant().expect("non-empty").0, 4096);
    }

    #[test]
    fn clone_is_deterministic_per_seed() {
        let p = kernel_profile();
        assert_eq!(generate_streams(&p, 3), generate_streams(&p, 3));
        // A profile whose distributions are all single-valued generates the
        // same clone for ANY seed — that's correct: there is nothing to
        // sample. Seed sensitivity shows on a stochastic profile instead.
        let stochastic = profile_kernel(&workloads::bfs(Scale::Tiny), &ProfilerConfig::default());
        assert_eq!(
            generate_streams(&stochastic, 3),
            generate_streams(&stochastic, 3)
        );
        assert_ne!(
            generate_streams(&stochastic, 3),
            generate_streams(&stochastic, 4)
        );
    }

    #[test]
    fn clone_reproduces_reuse_fraction() {
        let p = profile_kernel(&workloads::kmeans(Scale::Tiny), &ProfilerConfig::default());
        let streams = generate_streams(&p, 11);
        let mut merged = ReuseHistogram::new();
        for s in &streams {
            let lines = s.events.iter().flat_map(|e| match e {
                WarpStreamEvent::Access(a) => a.lines.iter().map(|l| l.0 / 128).collect::<Vec<_>>(),
                WarpStreamEvent::Sync => vec![],
            });
            merged.merge(&ReuseHistogram::from_lines(lines));
        }
        let dom = p.profile_weights.dominant().expect("non-empty").0;
        let orig_frac = p.reuse[dom].reuse_fraction();
        let clone_frac = merged.reuse_fraction();
        assert!(
            (orig_frac - clone_frac).abs() < 0.15,
            "reuse fraction drifted: orig {orig_frac:.3}, clone {clone_frac:.3}"
        );
    }

    #[test]
    fn clone_preserves_sync_structure() {
        let k = KernelBuilder::new("sync", 2u32, 64u32)
            .array("a", 1 << 12)
            .read(Pc(0x10), 0, IndexExpr::tid_linear(0, 1))
            .stmt(Stmt::Sync)
            .read(Pc(0x18), 0, IndexExpr::tid_linear(0, 1))
            .build()
            .expect("valid");
        let p = profile_kernel(&k, &ProfilerConfig::default());
        let streams = generate_streams(&p, 1);
        for s in &streams {
            assert!(matches!(s.events[1], WarpStreamEvent::Sync));
        }
    }

    #[test]
    fn clone_addresses_are_line_aligned() {
        let p = profile_kernel(&workloads::srad(Scale::Tiny), &ProfilerConfig::default());
        for s in generate_streams(&p, 5) {
            for e in &s.events {
                if let WarpStreamEvent::Access(a) = e {
                    for l in &a.lines {
                        assert_eq!(l.0 % 128, 0, "unaligned transaction {l}");
                    }
                }
            }
        }
    }

    #[test]
    fn divergent_profiles_are_sampled_by_weight() {
        let p = profile_kernel(&workloads::bfs(Scale::Tiny), &ProfilerConfig::default());
        assert!(p.profiles.len() > 1, "bfs should have several π profiles");
        let streams = generate_streams(&p, 9);
        // Clone warps should show diverse event counts, like the original.
        let mut lens: Vec<usize> = streams.iter().map(|s| s.events.len()).collect();
        lens.sort_unstable();
        lens.dedup();
        assert!(lens.len() > 1);
    }

    #[test]
    fn rebase_shifts_clone_addresses() {
        let p0 = kernel_profile();
        let mut p1 = p0.clone();
        p1.rebase(1 << 20);
        let s0 = generate_streams(&p0, 3);
        let s1 = generate_streams(&p1, 3);
        match (&s0[0].events[0], &s1[0].events[0]) {
            (WarpStreamEvent::Access(a), WarpStreamEvent::Access(b)) => {
                assert_eq!(b.lines[0].0 - a.lines[0].0, 1 << 20);
            }
            _ => panic!("expected accesses"),
        }
    }
}
