//! Ingesting raw per-thread traces from external tools.
//!
//! G-MAP's profiler consumes *coalesced warp streams*, but third-party
//! tracers (binary instrumentation, simulator hooks) typically emit flat
//! per-thread access lists — the `gmap-trace::io` formats. This module
//! reconstructs the warp-level view: threads are grouped into warps by the
//! launch geometry, each warp's lanes are replayed in lockstep (the k-th
//! access of every lane at the same PC forms one warp-level dynamic
//! instruction), and the per-lane requests are coalesced per CUDA §G.4.2.
//!
//! Divergence is handled by majority: when lane fronts disagree on the
//! next PC, the most common front PC forms the instruction with the lanes
//! that agree; the rest wait. Equal lane counts are broken deterministically
//! toward the **lowest PC** (see [`pop_warp_instruction`]). This
//! reconstructs exactly the SIMT order for traces produced by lockstep
//! execution, and degrades gracefully for approximately-ordered traces.
//!
//! The per-warp step ([`pop_warp_instruction`]) and the geometry mapping
//! ([`warp_lane_of`], [`live_lanes`]) are public so the streaming ingest
//! path (`gmap-ingest`) can drive the *same* reconstruction incrementally;
//! the differential guarantee (streaming byte-identical to materialized)
//! rests on both paths sharing this code.

use crate::error::GmapError;
use crate::profile::GmapProfile;
use crate::profiler::{profile_streams, ProfilerConfig};
use gmap_gpu::coalesce::coalesce_addrs;
use gmap_gpu::hierarchy::LaunchConfig;
use gmap_gpu::schedule::{CoalescedAccess, WarpStream, WarpStreamEvent};
use gmap_trace::io::TraceEntry;
use gmap_trace::record::{ByteAddr, MemAccess, Pc, WarpId};
use std::collections::{HashMap, VecDeque};

/// Maps a global thread id to its `(warp, lane)` under the launch
/// geometry, or `None` when the tid falls outside it.
///
/// Warp numbering is global and block-major: warp = `block *
/// warps_per_block + in_block_tid / warp_size`, lane = `in_block_tid %
/// warp_size` — the same mapping the execution substrate uses.
pub fn warp_lane_of(tid: u32, launch: &LaunchConfig, warp_size: u32) -> Option<(u32, usize)> {
    let tid = tid as u64;
    if tid >= launch.total_threads() {
        return None;
    }
    let tpb = launch.threads_per_block();
    let block = (tid / tpb as u64) as u32;
    let in_block = (tid % tpb as u64) as u32;
    let warp = block * launch.warps_per_block(warp_size) + in_block / warp_size;
    Some((warp, (in_block % warp_size) as usize))
}

/// Number of lanes of `warp` that map to real threads of the launch (the
/// final warp of a block is partial when `threads_per_block` is not a
/// multiple of `warp_size`).
pub fn live_lanes(warp: u32, launch: &LaunchConfig, warp_size: u32) -> u32 {
    let wpb = launch.warps_per_block(warp_size);
    let tpb = launch.threads_per_block();
    if warp / wpb >= launch.num_blocks() {
        return 0;
    }
    let base = (warp % wpb) * warp_size;
    tpb.saturating_sub(base).min(warp_size)
}

/// Pops the next warp-level dynamic instruction from a warp's per-lane
/// access queues, or `None` once every lane is drained.
///
/// The front PC of each non-empty lane votes; the PC with the most lanes
/// forms the instruction, those lanes pop, and their addresses are
/// coalesced into line transactions. **Tie-break:** when two front PCs tie
/// on lane count, the *lowest* PC wins — `max_by_key((count,
/// Reverse(pc)))` — so reconstruction never depends on hash-map iteration
/// order (the determinism contract covers warp streams).
pub fn pop_warp_instruction(
    queues: &mut [VecDeque<MemAccess>],
    line_size: u64,
) -> Option<CoalescedAccess> {
    let mut votes: HashMap<Pc, u32> = HashMap::new();
    for q in queues.iter() {
        if let Some(a) = q.front() {
            *votes.entry(a.pc).or_insert(0) += 1;
        }
    }
    let (&pc, _) = votes
        .iter()
        .max_by_key(|(pc, &c)| (c, std::cmp::Reverse(pc.0)))?;
    let mut addrs = Vec::new();
    let mut kind = None;
    for q in queues.iter_mut() {
        if q.front().is_some_and(|a| a.pc == pc) {
            let a = q.pop_front().expect("front checked");
            addrs.push(a.addr);
            kind.get_or_insert(a.kind);
        }
    }
    Some(CoalescedAccess {
        pc,
        kind: kind.expect("at least one lane participated"),
        lines: coalesce_addrs(&addrs, line_size),
    })
}

/// Reconstructs coalesced warp streams from flat per-thread entries.
///
/// Entries must be in per-thread program order (the order a tracer
/// naturally emits them); relative order *between* threads is irrelevant.
/// Threads whose ids fall outside the launch geometry are ignored.
pub fn warp_streams_from_entries(
    entries: &[TraceEntry],
    launch: &LaunchConfig,
    warp_size: u32,
    line_size: u64,
) -> Vec<WarpStream> {
    let wpb = launch.warps_per_block(warp_size);
    // Per-warp, per-lane access queues.
    let mut lanes: HashMap<u32, Vec<VecDeque<MemAccess>>> = HashMap::new();
    for (tid, acc) in entries {
        let Some((warp, lane)) = warp_lane_of(tid.0, launch, warp_size) else {
            continue;
        };
        lanes
            .entry(warp)
            .or_insert_with(|| vec![VecDeque::new(); warp_size as usize])[lane]
            .push_back(*acc);
    }
    let mut warps: Vec<u32> = lanes.keys().copied().collect();
    warps.sort_unstable();
    warps
        .into_iter()
        .map(|w| {
            let mut queues = lanes.remove(&w).expect("key from map");
            let mut events = Vec::new();
            while let Some(access) = pop_warp_instruction(&mut queues, line_size) {
                events.push(WarpStreamEvent::Access(access));
            }
            WarpStream {
                warp: WarpId(w),
                block: w / wpb,
                events,
            }
        })
        .collect()
}

/// End-to-end ingestion: per-thread entries → warp reconstruction →
/// statistical profile.
///
/// # Errors
///
/// Returns [`GmapError::EmptyProfile`] if no entry falls inside the
/// launch geometry.
pub fn profile_thread_trace(
    name: &str,
    entries: &[TraceEntry],
    launch: &LaunchConfig,
    cfg: &ProfilerConfig,
) -> Result<GmapProfile, GmapError> {
    let streams = warp_streams_from_entries(entries, launch, 32, cfg.line_size);
    profile_streams(name, &streams, launch, 32, cfg)
}

/// Convenience: total transactions after reconstruction (useful for
/// validating a tracer's output).
pub fn transaction_count(streams: &[WarpStream]) -> u64 {
    streams
        .iter()
        .flat_map(|s| s.events.iter())
        .map(|e| match e {
            WarpStreamEvent::Access(a) => a.lines.len() as u64,
            WarpStreamEvent::Sync => 0,
        })
        .sum()
}

/// Convenience: the line-aligned footprint (distinct lines) of a stream
/// set.
pub fn footprint_lines(streams: &[WarpStream], line_size: u64) -> u64 {
    let mut set = std::collections::HashSet::new();
    for s in streams {
        for e in &s.events {
            if let WarpStreamEvent::Access(a) = e {
                for l in &a.lines {
                    set.insert(ByteAddr(l.0).line(line_size));
                }
            }
        }
    }
    set.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_trace::record::{AccessKind, MemAccess, ThreadId};
    use proptest::prelude::*;

    fn entry(tid: u32, pc: u64, addr: u64) -> TraceEntry {
        (
            ThreadId(tid),
            MemAccess {
                pc: Pc(pc),
                addr: ByteAddr(addr),
                kind: AccessKind::Read,
            },
        )
    }

    /// 2 warps x 32 threads, unit stride, two instructions per thread.
    fn lockstep_entries() -> Vec<TraceEntry> {
        let mut out = Vec::new();
        for tid in 0..64u32 {
            out.push(entry(tid, 0x10, 0x1000 + tid as u64 * 4));
            out.push(entry(tid, 0x20, 0x9000 + tid as u64 * 4));
        }
        out
    }

    #[test]
    fn lockstep_trace_reconstructs_two_instructions_per_warp() {
        let launch = LaunchConfig::new(1u32, 64u32);
        let streams = warp_streams_from_entries(&lockstep_entries(), &launch, 32, 128);
        assert_eq!(streams.len(), 2);
        for s in &streams {
            assert_eq!(s.events.len(), 2);
            match &s.events[0] {
                WarpStreamEvent::Access(a) => {
                    assert_eq!(a.pc, Pc(0x10));
                    assert_eq!(a.lines.len(), 1, "unit stride fully coalesces");
                }
                other => panic!("expected access, got {other:?}"),
            }
        }
        assert_eq!(transaction_count(&streams), 4);
        assert_eq!(footprint_lines(&streams, 128), 4);
    }

    #[test]
    fn divergent_lanes_split_by_majority() {
        // Lanes 0..8 execute PC 0x30 before rejoining at 0x40; the rest go
        // straight to 0x40.
        let mut entries = Vec::new();
        for tid in 0..32u32 {
            if tid < 8 {
                entries.push(entry(tid, 0x30, 0x2000 + tid as u64 * 4));
            }
            entries.push(entry(tid, 0x40, 0x3000 + tid as u64 * 4));
        }
        let launch = LaunchConfig::new(1u32, 32u32);
        let streams = warp_streams_from_entries(&entries, &launch, 32, 128);
        assert_eq!(streams.len(), 1);
        let evs = &streams[0].events;
        // Majority first: 0x40 with 24 lanes, then 0x30, then the
        // remaining 0x40 lanes.
        assert_eq!(evs.len(), 3);
        let pcs: Vec<Pc> = evs
            .iter()
            .map(|e| match e {
                WarpStreamEvent::Access(a) => a.pc,
                WarpStreamEvent::Sync => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, vec![Pc(0x40), Pc(0x30), Pc(0x40)]);
    }

    #[test]
    fn equal_lane_counts_break_toward_lowest_pc() {
        // 16 lanes front PC 0x50, 16 lanes front PC 0x20: a perfect tie.
        // The lowest PC must win regardless of lane order.
        let mut entries = Vec::new();
        for tid in 0..32u32 {
            let pc = if tid % 2 == 0 { 0x50 } else { 0x20 };
            entries.push(entry(tid, pc, 0x4000 + tid as u64 * 4));
        }
        let launch = LaunchConfig::new(1u32, 32u32);
        let streams = warp_streams_from_entries(&entries, &launch, 32, 128);
        let pcs: Vec<Pc> = streams[0]
            .events
            .iter()
            .map(|e| match e {
                WarpStreamEvent::Access(a) => a.pc,
                WarpStreamEvent::Sync => unreachable!(),
            })
            .collect();
        assert_eq!(pcs, vec![Pc(0x20), Pc(0x50)]);
    }

    #[test]
    fn geometry_helpers_agree_with_reconstruction() {
        let launch = LaunchConfig::new(2u32, 48u32); // 2 warps/block, 2nd partial
        assert_eq!(warp_lane_of(0, &launch, 32), Some((0, 0)));
        assert_eq!(warp_lane_of(47, &launch, 32), Some((1, 15)));
        assert_eq!(warp_lane_of(48, &launch, 32), Some((2, 0)));
        assert_eq!(warp_lane_of(96, &launch, 32), None);
        assert_eq!(live_lanes(0, &launch, 32), 32);
        assert_eq!(live_lanes(1, &launch, 32), 16);
        assert_eq!(live_lanes(3, &launch, 32), 16);
        assert_eq!(live_lanes(4, &launch, 32), 0, "beyond the grid");
    }

    #[test]
    fn out_of_range_threads_ignored() {
        let launch = LaunchConfig::new(1u32, 32u32);
        let mut entries = lockstep_entries(); // tids up to 63
        entries.push(entry(999, 0x10, 0));
        let streams = warp_streams_from_entries(&entries, &launch, 32, 128);
        assert_eq!(streams.len(), 1, "only warp 0 fits the 32-thread launch");
    }

    #[test]
    fn profile_from_thread_trace() {
        let launch = LaunchConfig::new(1u32, 64u32);
        let p = profile_thread_trace(
            "ingested",
            &lockstep_entries(),
            &launch,
            &ProfilerConfig::default(),
        )
        .expect("valid trace");
        assert_eq!(p.num_slots(), 2);
        let slot = p.slot_of(Pc(0x10)).expect("profiled");
        assert_eq!(p.inter_stride[slot].dominant().expect("non-empty").0, 128);
    }

    #[test]
    fn empty_trace_rejected() {
        let launch = LaunchConfig::new(1u32, 32u32);
        let err = profile_thread_trace("empty", &[], &launch, &ProfilerConfig::default());
        assert!(err.is_err());
    }

    #[test]
    fn round_trip_through_io_formats() {
        let entries = lockstep_entries();
        let mut buf = Vec::new();
        gmap_trace::io::write_binary(&mut buf, &entries).expect("write");
        let back = gmap_trace::io::read_binary(&buf[..]).expect("read");
        let launch = LaunchConfig::new(1u32, 64u32);
        let a = warp_streams_from_entries(&entries, &launch, 32, 128);
        let b = warp_streams_from_entries(&back, &launch, 32, 128);
        assert_eq!(a, b);
    }

    proptest! {
        /// The first reconstructed instruction is always the majority front
        /// PC, with equal counts broken toward the lowest PC — for *any*
        /// assignment of two PCs across the 32 lanes. This pins the
        /// tie-break as lane-order independent.
        #[test]
        fn majority_vote_and_tie_break_are_deterministic(
            mask in proptest::any::<u32>(),
            lo in 1..1000u64,
            delta in 1..1000u64,
        ) {
            let hi = lo + delta;
            let entries: Vec<TraceEntry> = (0..32u32)
                .map(|tid| {
                    let pc = if mask & (1 << tid) != 0 { hi } else { lo };
                    entry(tid, pc, 0x1000 + tid as u64 * 4)
                })
                .collect();
            let hi_count = mask.count_ones();
            let lo_count = 32 - hi_count;
            let expected = match hi_count.cmp(&lo_count) {
                std::cmp::Ordering::Greater => hi,
                std::cmp::Ordering::Less => lo,
                std::cmp::Ordering::Equal => lo, // tie: lowest PC wins
            };
            let launch = LaunchConfig::new(1u32, 32u32);
            let streams = warp_streams_from_entries(&entries, &launch, 32, 128);
            let first = match &streams[0].events[0] {
                WarpStreamEvent::Access(a) => a.pc,
                WarpStreamEvent::Sync => unreachable!(),
            };
            prop_assert_eq!(first, Pc(expected));
        }
    }
}
