//! JSON rendering/parsing over the vendored serde `Value` model.
//!
//! Mirrors the `serde_json` API surface used in this workspace:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and [`Error`].

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` as a human-readable, indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Deserialize an instance of `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, level: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                let s = format!("{}", f);
                out.push_str(&s);
                // Keep floats recognizable as floats on re-parse.
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Seq(items) => {
            render_seq(
                items.iter(),
                items.len(),
                indent,
                level,
                out,
                |item, lvl, out| render(item, indent, lvl, out),
            );
        }
        Value::Map(entries) => {
            out.push('{');
            if entries.is_empty() {
                out.push('}');
                return;
            }
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, level + 1, out);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, indent, level + 1, out);
            }
            newline_indent(indent, level, out);
            out.push('}');
        }
    }
}

fn render_seq<'a, I, F>(
    items: I,
    len: usize,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
    mut f: F,
) where
    I: Iterator<Item = &'a Value>,
    F: FnMut(&Value, usize, &mut String),
{
    out.push('[');
    if len == 0 {
        out.push(']');
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(indent, level + 1, out);
        f(item, level + 1, out);
    }
    newline_indent(indent, level, out);
    out.push(']');
}

fn newline_indent(indent: Option<usize>, level: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("bad literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or ']' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => {
                            return Err(Error::new(format!(
                                "expected ',' or '}}' at byte {}",
                                self.pos
                            )))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?);
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(Error::new)?,
                                16,
                            )
                            .map_err(Error::new)?;
                            s.push(
                                char::from_u32(code).ok_or_else(|| Error::new("bad \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error::new(format!("bad escape {:?}", other))),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(Error::new)?;
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(Error::new)
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(Error::new)
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(Error::new)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(from_str::<u64>(&to_string(&42u64).unwrap()).unwrap(), 42);
        assert_eq!(from_str::<i64>(&to_string(&-7i64).unwrap()).unwrap(), -7);
        assert_eq!(from_str::<f64>(&to_string(&1.5f64).unwrap()).unwrap(), 1.5);
        assert_eq!(from_str::<f64>(&to_string(&2.0f64).unwrap()).unwrap(), 2.0);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(
            from_str::<String>(&to_string("a\"b\\c\nd").unwrap()).unwrap(),
            "a\"b\\c\nd"
        );
    }

    #[test]
    fn collection_round_trips() {
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(from_str::<Vec<u32>>(&to_string(&v).unwrap()).unwrap(), v);
        let mut m = BTreeMap::new();
        m.insert(-3i64, 10u64);
        m.insert(5i64, 20u64);
        let round: BTreeMap<i64, u64> = from_str(&to_string_pretty(&m).unwrap()).unwrap();
        assert_eq!(round, m);
        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
    }
}
