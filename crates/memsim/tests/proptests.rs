//! Property-based tests of cache-model invariants.

use gmap_gpu::schedule::MemoryModel;
use gmap_memsim::cache::{Cache, CacheConfig, ReplacementPolicy};
use gmap_memsim::hierarchy::{GpuHierarchy, HierarchyConfig};
use gmap_memsim::mshr::Mshr;
use gmap_memsim::stackdist::{
    evaluate_fifo_multi, evaluate_lru_multi, evaluate_lru_prefetch_multi, replay_per_config,
    replay_per_config_prefetch, LineAccess, PrefetchSchedule, WriteMode,
};
use gmap_trace::record::{AccessKind, ByteAddr, CoreId, Pc};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::Fifo),
        Just(ReplacementPolicy::PseudoLru),
        Just(ReplacementPolicy::Random),
    ]
}

proptest! {
    /// Counters stay consistent for any access stream and any policy:
    /// hits + misses = accesses, reads + writes = accesses, and the
    /// number of resident lines never exceeds the capacity.
    #[test]
    fn cache_counters_consistent(
        lines in proptest::collection::vec((0u64..256, any::<bool>()), 1..500),
        policy in any_policy(),
    ) {
        let cfg = CacheConfig::new(2048, 4, 64, policy).expect("valid");
        let mut c = Cache::new(cfg);
        for &(l, w) in &lines {
            c.access(l, w);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.reads + s.writes, s.accesses);
        let resident = (0u64..256).filter(|&l| c.probe(l)).count() as u64;
        prop_assert!(resident <= cfg.num_lines());
        // Evictions can't exceed fills.
        prop_assert!(s.evictions <= s.misses + s.prefetch_fills);
        prop_assert!(s.writebacks <= s.evictions);
    }

    /// Immediately re-accessing a line always hits, under every policy.
    #[test]
    fn immediate_reaccess_hits(
        lines in proptest::collection::vec(0u64..1024, 1..200),
        policy in any_policy(),
    ) {
        let cfg = CacheConfig::new(4096, 4, 64, policy).expect("valid");
        let mut c = Cache::new(cfg);
        for &l in &lines {
            c.access(l, false);
            prop_assert!(c.access(l, false).is_hit(), "line {l} must hit right after fill");
        }
    }

    /// A fully-associative LRU cache of N lines never misses on a cyclic
    /// working set of at most N lines (after warmup).
    #[test]
    fn lru_holds_small_working_set(ws_size in 1usize..16) {
        let cfg = CacheConfig::new(16 * 64, 16, 64, ReplacementPolicy::Lru).expect("valid");
        let mut c = Cache::new(cfg);
        for round in 0..5 {
            for l in 0..ws_size as u64 {
                let hit = c.access(l, false).is_hit();
                if round > 0 {
                    prop_assert!(hit, "round {round}, line {l} must hit");
                }
            }
        }
    }

    /// The MSHR file never exceeds its capacity in flight.
    #[test]
    fn mshr_capacity_respected(
        misses in proptest::collection::vec((0u64..64, 0u64..1000), 1..200),
        cap in 1usize..16,
    ) {
        let mut m = Mshr::new(cap);
        let mut cycle = 0;
        for &(line, gap) in &misses {
            cycle += gap;
            m.on_miss(line, cycle, cycle + 100);
            prop_assert!(m.in_flight(cycle) <= cap);
        }
    }

    /// Hierarchy latencies are bounded by the three-level sum, and the
    /// stats identity holds across arbitrary streams.
    #[test]
    fn hierarchy_latency_bounded(
        stream in proptest::collection::vec((0u64..(1 << 16), any::<bool>(), 0u16..4), 1..300),
    ) {
        let cfg = HierarchyConfig::fermi_baseline();
        let mut h = GpuHierarchy::new(cfg).expect("valid");
        let max_lat = cfg.l1_hit_latency + cfg.l2_hit_latency + cfg.mem_latency;
        let mut cycle = 0u64;
        for &(addr, is_write, core) in &stream {
            let kind = if is_write { AccessKind::Write } else { AccessKind::Read };
            let lat = h.access(CoreId(core), Pc(0x10), ByteAddr(addr * 128), kind, cycle);
            if is_write {
                prop_assert_eq!(lat, cfg.store_latency);
            } else {
                prop_assert!(lat >= cfg.l1_hit_latency);
                // Reads can exceed the sum only through MSHR interactions
                // (hit-under-miss waits), never by more than mem latency.
                prop_assert!(lat <= max_lat + cfg.mem_latency);
            }
            cycle += 10;
        }
        let s = h.stats();
        prop_assert_eq!(s.l1.hits + s.l1.misses, s.l1.accesses);
        prop_assert_eq!(s.l2.hits + s.l2.misses, s.l2.accesses);
    }

    /// The single-pass stack-distance evaluator's counts exactly equal
    /// direct per-config `Cache` simulation for random line streams, over
    /// a geometry grid spanning direct-mapped (assoc = 1) through fully
    /// associative (one set), under both write models.
    #[test]
    fn stackdist_matches_direct_cache_simulation(
        stream in proptest::collection::vec((0u64..512, any::<bool>()), 1..400),
        allocate in any::<bool>(),
    ) {
        let grid = [
            (64u64 * 64, 1u32), // 64 sets, direct-mapped
            (64 * 64, 64),      // 1 set, fully associative
            (8 * 64, 1),        // tiny direct-mapped
            (8 * 64, 8),        // tiny fully associative
            (32 * 64, 4),
            (256 * 64, 16),
        ];
        let configs: Vec<CacheConfig> = grid
            .iter()
            .map(|&(size, assoc)| {
                CacheConfig::new(size, assoc, 64, ReplacementPolicy::Lru).expect("valid")
            })
            .collect();
        let accesses: Vec<LineAccess> =
            stream.iter().map(|&(l, w)| LineAccess::new(l, w)).collect();
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let result = evaluate_lru_multi(&configs, &accesses, mode).expect("uniform LRU group");
        let reference = replay_per_config(&configs, &accesses, mode);
        prop_assert_eq!(&result.counts, &reference);
        if allocate {
            // Write-allocate streams never diverge, so the fast path ran.
            prop_assert!(!result.fell_back);
        }
    }

    /// The FIFO insertion-order evaluator's counts exactly equal direct
    /// per-config simulation with `ReplacementPolicy::Fifo` — including
    /// streams that trip Bélády's anomaly and force the internal replay
    /// fallback.
    #[test]
    fn fifo_stackdist_matches_direct_cache_simulation(
        stream in proptest::collection::vec((0u64..512, any::<bool>()), 1..400),
        allocate in any::<bool>(),
    ) {
        let grid = [
            (64u64 * 64, 1u32),
            (64 * 64, 64),
            (8 * 64, 1),
            (8 * 64, 8),
            (32 * 64, 4),
            (256 * 64, 16),
        ];
        let configs: Vec<CacheConfig> = grid
            .iter()
            .map(|&(size, assoc)| {
                CacheConfig::new(size, assoc, 64, ReplacementPolicy::Fifo).expect("valid")
            })
            .collect();
        let accesses: Vec<LineAccess> =
            stream.iter().map(|&(l, w)| LineAccess::new(l, w)).collect();
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let result = evaluate_fifo_multi(&configs, &accesses, mode).expect("uniform FIFO group");
        let reference = replay_per_config(&configs, &accesses, mode);
        prop_assert_eq!(&result.counts, &reference);
    }

    /// The prefetch-composed LRU evaluator exactly matches per-config
    /// replay under randomized demand streams and randomized candidate
    /// schedules (hierarchy fill order: lookup, candidates, demand fill).
    #[test]
    fn prefetch_stackdist_matches_direct_cache_simulation(
        stream in proptest::collection::vec(
            ((0u64..384, any::<bool>()), proptest::collection::vec(0u64..384, 0..3)),
            1..300,
        ),
        allocate in any::<bool>(),
    ) {
        let grid = [
            (64u64 * 64, 1u32),
            (64 * 64, 64),
            (8 * 64, 4),
            (32 * 64, 4),
            (128 * 64, 8),
        ];
        let configs: Vec<CacheConfig> = grid
            .iter()
            .map(|&(size, assoc)| {
                CacheConfig::new(size, assoc, 64, ReplacementPolicy::Lru).expect("valid")
            })
            .collect();
        let mut accesses = Vec::with_capacity(stream.len());
        let mut schedule = PrefetchSchedule::new();
        for ((l, w), cands) in &stream {
            accesses.push(LineAccess::new(*l, *w));
            schedule.push(cands);
        }
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let result = evaluate_lru_prefetch_multi(&configs, &accesses, &schedule, mode)
            .expect("uniform LRU group");
        let reference = replay_per_config_prefetch(&configs, &accesses, Some(&schedule), mode);
        prop_assert_eq!(&result.counts, &reference);
    }
}
