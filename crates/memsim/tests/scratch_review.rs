use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap_memsim::stackdist::{
    evaluate_lru_prefetch_multi, replay_per_config_prefetch, LineAccess, PrefetchSchedule,
    WriteMode,
};

#[test]
fn candidate_equal_to_demand_line_stays_exact() {
    // Single-set caches of assoc 1, 2, 3 (one set-count class).
    let lru = |size: u64, assoc: u32| {
        CacheConfig::new(size, assoc, 64, ReplacementPolicy::Lru).expect("valid")
    };
    let configs = [lru(64, 1), lru(128, 2), lru(192, 3)];
    // Access 1 is a miss carrying a candidate equal to its own line
    // (distance = 0 stride prefetcher emits exactly this).
    let stream = vec![
        LineAccess::new(9, false),
        LineAccess::new(0, false),
        LineAccess::new(9, false),
    ];
    let mut sched = PrefetchSchedule::new();
    sched.push(&[]);
    sched.push(&[0]);
    sched.push(&[]);
    let r = evaluate_lru_prefetch_multi(&configs, &stream, &sched, WriteMode::Allocate).unwrap();
    let reference = replay_per_config_prefetch(&configs, &stream, Some(&sched), WriteMode::Allocate);
    assert_eq!(r.counts, reference, "fell_back={}", r.fell_back);
}
