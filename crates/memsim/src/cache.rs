//! Set-associative cache model.
//!
//! Caches operate on *line indices* (byte address divided by the line
//! size); the hierarchy performs that conversion once at its boundary. The
//! model is untimed — latencies are assigned by the [`crate::hierarchy`] —
//! but tracks everything the experiments need: hits/misses by kind,
//! evictions, writebacks, and prefetch usefulness.

use gmap_trace::rng::Rng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Replacement policy of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Least recently used (true LRU).
    #[default]
    Lru,
    /// First-in first-out: insertion order, untouched by hits.
    Fifo,
    /// Tree pseudo-LRU.
    PseudoLru,
    /// Uniform random victim.
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Lru => f.write_str("LRU"),
            ReplacementPolicy::Fifo => f.write_str("FIFO"),
            ReplacementPolicy::PseudoLru => f.write_str("PLRU"),
            ReplacementPolicy::Random => f.write_str("Random"),
        }
    }
}

/// Geometry and policy of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates and validates a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the line size is not a power of two, the
    /// capacity is not an exact multiple of `assoc * line_size`, or any
    /// field is zero.
    pub fn new(
        size_bytes: u64,
        assoc: u32,
        line_size: u64,
        policy: ReplacementPolicy,
    ) -> Result<Self, ConfigError> {
        if size_bytes == 0 || assoc == 0 || line_size == 0 {
            return Err(ConfigError::Zero);
        }
        if !line_size.is_power_of_two() {
            return Err(ConfigError::LineNotPowerOfTwo { line_size });
        }
        let way_bytes = assoc as u64 * line_size;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::NotSetDivisible {
                size_bytes,
                assoc,
                line_size,
            });
        }
        let sets = size_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(ConfigError::SetsNotPowerOfTwo { sets });
        }
        Ok(CacheConfig {
            size_bytes,
            assoc,
            line_size,
            policy,
        })
    }

    /// Number of sets.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_size)
    }

    /// Total number of lines.
    pub fn num_lines(&self) -> u64 {
        self.size_bytes / self.line_size
    }
}

/// Error building a [`CacheConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// A size, associativity or line size of zero.
    Zero,
    /// Line size is not a power of two.
    LineNotPowerOfTwo {
        /// The offending line size.
        line_size: u64,
    },
    /// Capacity does not divide evenly into sets.
    NotSetDivisible {
        /// Requested capacity.
        size_bytes: u64,
        /// Requested associativity.
        assoc: u32,
        /// Requested line size.
        line_size: u64,
    },
    /// The derived set count is not a power of two (required for bit
    /// indexing).
    SetsNotPowerOfTwo {
        /// The derived set count.
        sets: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero => f.write_str("cache parameters must be non-zero"),
            ConfigError::LineNotPowerOfTwo { line_size } => {
                write!(f, "line size {line_size} is not a power of two")
            }
            ConfigError::NotSetDivisible {
                size_bytes,
                assoc,
                line_size,
            } => write!(
                f,
                "capacity {size_bytes} not divisible into sets of {assoc} x {line_size} B lines"
            ),
            ConfigError::SetsNotPowerOfTwo { sets } => {
                write!(f, "derived set count {sets} is not a power of two")
            }
        }
    }
}

impl Error for ConfigError {}

/// Counters of one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Demand accesses (prefetch fills excluded).
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Demand read accesses.
    pub reads: u64,
    /// Demand write accesses.
    pub writes: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Dirty lines written back on eviction.
    pub writebacks: u64,
    /// Lines filled by a prefetcher.
    pub prefetch_fills: u64,
    /// Prefetched lines that later served a demand hit (first touch).
    pub prefetch_useful: u64,
}

impl CacheStats {
    /// Demand miss rate in `[0, 1]`; 0 for an untouched cache.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Prefetch accuracy: useful / filled (0 if none issued).
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetch_fills == 0 {
            0.0
        } else {
            self.prefetch_useful as f64 / self.prefetch_fills as f64
        }
    }

    /// Accumulates another instance's counters (used to aggregate per-core
    /// L1s).
    pub fn merge(&mut self, other: &CacheStats) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.prefetch_fills += other.prefetch_fills;
        self.prefetch_useful += other.prefetch_useful;
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    prefetched: bool,
    /// LRU/FIFO timestamp.
    stamp: u64,
}

/// Result of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has been filled. If a dirty victim
    /// was evicted its line index is reported for write-back.
    Miss {
        /// Dirty line evicted by the fill, if any.
        writeback: Option<u64>,
    },
}

impl AccessOutcome {
    /// `true` for [`AccessOutcome::Hit`].
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// Parameters of a general demand access (see [`Cache::request`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRequest {
    /// Line index.
    pub line: u64,
    /// Counts as a write in the statistics.
    pub is_write: bool,
    /// Fill the line on a miss.
    pub allocate_on_miss: bool,
    /// Mark the line dirty on hit (and on fill, if allocating).
    pub mark_dirty: bool,
}

/// Result of [`Cache::request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestOutcome {
    /// The line was resident.
    pub hit: bool,
    /// A dirty victim evicted by an allocating miss.
    pub writeback: Option<u64>,
}

/// A set-associative cache over line indices.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    ways: Vec<Way>,
    /// Per-set PLRU tree bits (assoc-1 bits packed in a u64).
    plru: Vec<u64>,
    counter: u64,
    rng: Rng,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.num_sets() as usize;
        Cache {
            cfg,
            ways: vec![Way::default(); sets * cfg.assoc as usize],
            plru: vec![0; sets],
            counter: 0,
            rng: Rng::seed_from(0xCAC4E ^ cfg.size_bytes ^ (cfg.assoc as u64) << 40),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & (self.cfg.num_sets() - 1)) as usize
    }

    #[inline]
    fn ways_of(&mut self, set: usize) -> std::ops::Range<usize> {
        let a = self.cfg.assoc as usize;
        set * a..(set + 1) * a
    }

    /// Demand access with allocate-on-miss and write-back semantics
    /// (`is_write` marks the line dirty). Shorthand for [`Cache::request`].
    pub fn access(&mut self, line: u64, is_write: bool) -> AccessOutcome {
        let out = self.request(AccessRequest {
            line,
            is_write,
            allocate_on_miss: true,
            mark_dirty: is_write,
        });
        if out.hit {
            AccessOutcome::Hit
        } else {
            AccessOutcome::Miss {
                writeback: out.writeback,
            }
        }
    }

    /// Demand access that does **not** allocate on miss (write-through
    /// no-allocate L1 behaviour for stores). Returns `true` on hit.
    pub fn access_no_allocate(&mut self, line: u64, is_write: bool) -> bool {
        self.request(AccessRequest {
            line,
            is_write,
            allocate_on_miss: false,
            mark_dirty: is_write,
        })
        .hit
    }

    /// Fully general demand access; the policy knobs compose the standard
    /// write policies (write-back = `mark_dirty`, write-through = `!mark_dirty`,
    /// write-allocate = `allocate_on_miss`).
    pub fn request(&mut self, req: AccessRequest) -> RequestOutcome {
        self.stats.accesses += 1;
        if req.is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }
        if let Some(w) = self.find(req.line) {
            self.stats.hits += 1;
            if self.ways[w].prefetched {
                self.ways[w].prefetched = false;
                self.stats.prefetch_useful += 1;
            }
            if req.mark_dirty {
                self.ways[w].dirty = true;
            }
            self.touch(w, req.line);
            return RequestOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.stats.misses += 1;
        let writeback = if req.allocate_on_miss {
            self.fill(req.line, req.mark_dirty, false)
        } else {
            None
        };
        RequestOutcome {
            hit: false,
            writeback,
        }
    }

    /// `true` if the line is resident (no state change, no stats).
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let a = self.cfg.assoc as usize;
        self.ways[set * a..(set + 1) * a]
            .iter()
            .any(|w| w.valid && w.tag == line)
    }

    /// Fills a line from a prefetcher. Counts as a prefetch fill, not a
    /// demand access. Returns an evicted dirty line, if any. No-op (and
    /// `None`) if the line is already resident.
    pub fn prefetch_fill(&mut self, line: u64) -> Option<u64> {
        if self.probe(line) {
            return None;
        }
        self.stats.prefetch_fills += 1;
        self.fill(line, false, true)
    }

    /// Fills a line after a demand miss handled externally (e.g. a miss
    /// that consulted the MSHR file first). Does not touch the demand
    /// counters — the miss was already counted by the lookup. Returns an
    /// evicted dirty line, if any; no-op if the line is already resident.
    pub fn demand_fill(&mut self, line: u64) -> Option<u64> {
        if self.probe(line) {
            return None;
        }
        self.fill(line, false, false)
    }

    /// Invalidates a line if resident; returns `true` if it was dirty.
    pub fn invalidate(&mut self, line: u64) -> bool {
        if let Some(w) = self.find(line) {
            let dirty = self.ways[w].dirty;
            self.ways[w] = Way::default();
            dirty
        } else {
            false
        }
    }

    fn find(&self, line: u64) -> Option<usize> {
        let set = self.set_of(line);
        let a = self.cfg.assoc as usize;
        (set * a..(set + 1) * a).find(|&i| self.ways[i].valid && self.ways[i].tag == line)
    }

    /// Updates recency state on a hit.
    fn touch(&mut self, way_idx: usize, _line: u64) {
        match self.cfg.policy {
            ReplacementPolicy::Lru => {
                self.counter += 1;
                self.ways[way_idx].stamp = self.counter;
            }
            ReplacementPolicy::Fifo | ReplacementPolicy::Random => {}
            ReplacementPolicy::PseudoLru => {
                let a = self.cfg.assoc as usize;
                let set = way_idx / a;
                let way = way_idx % a;
                self.plru_touch(set, way);
            }
        }
    }

    /// Allocates `line`, returning a dirty victim line if one was evicted.
    fn fill(&mut self, line: u64, dirty: bool, prefetched: bool) -> Option<u64> {
        let set = self.set_of(line);
        let range = self.ways_of(set);
        // Prefer an invalid way.
        let victim = range
            .clone()
            .find(|&i| !self.ways[i].valid)
            .unwrap_or_else(|| self.pick_victim(set));
        let evicted = &self.ways[victim];
        let mut writeback = None;
        if evicted.valid {
            self.stats.evictions += 1;
            if evicted.dirty {
                self.stats.writebacks += 1;
                writeback = Some(evicted.tag);
            }
        }
        self.counter += 1;
        self.ways[victim] = Way {
            tag: line,
            valid: true,
            dirty,
            prefetched,
            stamp: self.counter,
        };
        if self.cfg.policy == ReplacementPolicy::PseudoLru {
            let a = self.cfg.assoc as usize;
            self.plru_touch(set, victim % a);
        }
        writeback
    }

    fn pick_victim(&mut self, set: usize) -> usize {
        let a = self.cfg.assoc as usize;
        let base = set * a;
        match self.cfg.policy {
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (base..base + a)
                .min_by_key(|&i| self.ways[i].stamp)
                .expect("associativity is non-zero"),
            ReplacementPolicy::Random => base + self.rng.gen_range(a as u64) as usize,
            ReplacementPolicy::PseudoLru => base + self.plru_victim(set),
        }
    }

    /// Walks the PLRU tree toward the pseudo-least-recent way.
    fn plru_victim(&self, set: usize) -> usize {
        let a = self.cfg.assoc as usize;
        if a == 1 {
            return 0;
        }
        let bits = self.plru[set];
        let mut node = 0usize; // root of implicit binary tree
        let levels = a.trailing_zeros() as usize; // assoc must be a power of two for PLRU
        let mut way = 0usize;
        for _ in 0..levels {
            let bit = (bits >> node) & 1;
            way = (way << 1) | bit as usize;
            node = 2 * node + 1 + bit as usize;
        }
        way
    }

    /// Flips the PLRU tree bits away from the touched way.
    fn plru_touch(&mut self, set: usize, way: usize) {
        let a = self.cfg.assoc as usize;
        if a == 1 {
            return;
        }
        let levels = a.trailing_zeros() as usize;
        let mut node = 0usize;
        for level in (0..levels).rev() {
            let bit = (way >> level) & 1;
            // Point away from the visited child.
            if bit == 1 {
                self.plru[set] &= !(1 << node);
            } else {
                self.plru[set] |= 1 << node;
            }
            node = 2 * node + 1 + bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(size: u64, assoc: u32, line: u64, policy: ReplacementPolicy) -> CacheConfig {
        CacheConfig::new(size, assoc, line, policy).expect("valid config")
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new(16 * 1024, 4, 128, ReplacementPolicy::Lru).is_ok());
        assert_eq!(
            CacheConfig::new(0, 4, 128, ReplacementPolicy::Lru),
            Err(ConfigError::Zero)
        );
        assert!(matches!(
            CacheConfig::new(16 * 1024, 4, 100, ReplacementPolicy::Lru),
            Err(ConfigError::LineNotPowerOfTwo { .. })
        ));
        assert!(matches!(
            CacheConfig::new(16 * 1024 + 128, 4, 128, ReplacementPolicy::Lru),
            Err(ConfigError::NotSetDivisible { .. })
        ));
        assert!(matches!(
            CacheConfig::new(128 * 3 * 4, 4, 128, ReplacementPolicy::Lru),
            Err(ConfigError::SetsNotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn geometry() {
        let c = cfg(16 * 1024, 4, 128, ReplacementPolicy::Lru);
        assert_eq!(c.num_sets(), 32);
        assert_eq!(c.num_lines(), 128);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(cfg(1024, 2, 64, ReplacementPolicy::Lru));
        assert!(!c.access(5, false).is_hit());
        assert!(c.access(5, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set, 2 ways: lines must map to the same set.
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Lru));
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // 0 is now MRU
        c.access(2, false); // evicts 1
        assert!(c.probe(0));
        assert!(!c.probe(1));
        assert!(c.probe(2));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Fifo));
        c.access(0, false);
        c.access(1, false);
        c.access(0, false); // hit must NOT refresh 0 under FIFO
        c.access(2, false); // evicts 0 (oldest insertion)
        assert!(!c.probe(0));
        assert!(c.probe(1));
        assert!(c.probe(2));
    }

    #[test]
    fn plru_victim_is_not_most_recent() {
        let mut c = Cache::new(cfg(512, 8, 64, ReplacementPolicy::PseudoLru));
        for l in 0..8 {
            c.access(l, false);
        }
        c.access(7, false); // make 7 clearly recent
        c.access(8, false); // eviction
        assert!(c.probe(7), "PLRU must not evict the most recently used way");
    }

    #[test]
    fn random_policy_is_deterministic_per_seed_and_valid() {
        let mut c = Cache::new(cfg(256, 4, 64, ReplacementPolicy::Random));
        for l in 0..100 {
            c.access(l, false);
        }
        assert_eq!(c.stats().accesses, 100);
        // 4 ways, 1 set: exactly 4 lines resident.
        let resident = (0..100).filter(|&l| c.probe(l)).count();
        assert_eq!(resident, 4);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Lru));
        c.access(0, true); // dirty
        c.access(1, false);
        match c.access(2, false) {
            AccessOutcome::Miss {
                writeback: Some(line),
            } => assert_eq!(line, 0),
            other => panic!("expected dirty eviction of line 0, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Lru));
        c.access(0, false);
        c.access(0, true); // dirty via write hit
        c.access(1, false);
        match c.access(2, false) {
            AccessOutcome::Miss { writeback } => assert_eq!(writeback, Some(0)),
            AccessOutcome::Hit => panic!("expected miss"),
        }
    }

    #[test]
    fn no_allocate_access_does_not_fill() {
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Lru));
        assert!(!c.access_no_allocate(3, true));
        assert!(!c.probe(3));
        assert_eq!(c.stats().misses, 1);
        c.access(3, false);
        assert!(c.access_no_allocate(3, true));
    }

    #[test]
    fn prefetch_fill_and_usefulness() {
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Lru));
        assert_eq!(c.prefetch_fill(9), None);
        assert_eq!(c.stats().prefetch_fills, 1);
        assert!(c.probe(9));
        // Demand hit on the prefetched line counts as useful exactly once.
        assert!(c.access(9, false).is_hit());
        assert!(c.access(9, false).is_hit());
        assert_eq!(c.stats().prefetch_useful, 1);
        assert!((c.stats().prefetch_accuracy() - 1.0).abs() < 1e-12);
        // Prefetching a resident line is a no-op.
        c.prefetch_fill(9);
        assert_eq!(c.stats().prefetch_fills, 1);
    }

    #[test]
    fn invalidate_reports_dirtiness() {
        let mut c = Cache::new(cfg(128, 2, 64, ReplacementPolicy::Lru));
        c.access(0, true);
        c.access(1, false);
        assert!(c.invalidate(0));
        assert!(!c.invalidate(1) || true); // clean line
        assert!(!c.probe(0));
        assert!(!c.invalidate(42)); // absent line
    }

    #[test]
    fn set_indexing_separates_conflicts() {
        // 2 sets: even lines -> set 0, odd -> set 1.
        let mut c = Cache::new(cfg(256, 2, 64, ReplacementPolicy::Lru));
        c.access(0, false);
        c.access(2, false);
        c.access(4, false); // evicts 0 (same set), leaves odd set alone
        c.access(1, false);
        assert!(!c.probe(0));
        assert!(c.probe(1));
        assert!(c.probe(2));
        assert!(c.probe(4));
    }

    #[test]
    fn bigger_cache_misses_less() {
        let working_set: Vec<u64> = (0..64).collect();
        let mut small = Cache::new(cfg(1024, 4, 64, ReplacementPolicy::Lru)); // 16 lines
        let mut big = Cache::new(cfg(8192, 4, 64, ReplacementPolicy::Lru)); // 128 lines
        for _ in 0..10 {
            for &l in &working_set {
                small.access(l, false);
                big.access(l, false);
            }
        }
        assert!(big.stats().miss_rate() < small.stats().miss_rate());
        // The big cache holds the whole working set: only cold misses.
        assert_eq!(big.stats().misses, 64);
    }

    #[test]
    fn stats_merge() {
        let mut a = CacheStats {
            accesses: 10,
            hits: 6,
            misses: 4,
            ..Default::default()
        };
        let b = CacheStats {
            accesses: 10,
            hits: 10,
            misses: 0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accesses, 20);
        assert!((a.miss_rate() - 0.2).abs() < 1e-12);
    }
}
