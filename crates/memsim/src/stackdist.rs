//! Single-pass multi-configuration cache evaluation (Mattson stack
//! distances, plus a FIFO insertion-order variant and prefetch-fill
//! composition).
//!
//! The classic Mattson inclusion result: under true LRU with bit-selected
//! set indexing, the content of an `(S sets, a ways)` cache is exactly
//! the `a` most-recently-used lines of each set of an `(S, A)` cache for
//! any `A ≥ a`. So per distinct set count `S` the evaluator keeps one
//! per-set recency list capped at `A_max` (the largest associativity
//! sharing that set count); an access that hits at way-position `p` hits
//! every geometry of the class with associativity `> p`. One pass over
//! the access stream therefore yields exact hit/miss counts for an
//! arbitrary grid of LRU geometries sharing a line size — turning an
//! O(configs)-pass sweep into an O(line sizes)-pass sweep, at
//! O(set-count classes × A_max) work per access.
//!
//! Two write models are supported:
//!
//! - [`WriteMode::Allocate`] (write-back, write-allocate — the L2 in this
//!   hierarchy): writes allocate and touch recency exactly like reads, so
//!   the inclusion property holds unconditionally and the single pass is
//!   always exact.
//! - [`WriteMode::NoAllocate`] (write-through, no-allocate — the L1):
//!   a write's recency side-effect depends on whether it *hit*, which is
//!   geometry-dependent. Each write is classified per class during the
//!   pass:
//!   * absent from the class list → miss in every geometry of the class,
//!     no recency change (exact);
//!   * present at a position every associativity of the class covers →
//!     uniform hit, move to MRU (exact);
//!   * anything else is *divergent for that class*: inclusion breaks, so
//!     the class's geometries are transparently re-evaluated by exact
//!     per-configuration replay through [`crate::cache::Cache`] — the
//!     returned counts are **always** exact; divergence only costs
//!     speed, never correctness, and only for the affected class.
//!
//! # Prefetch-fill composition
//!
//! [`evaluate_lru_prefetch_multi`] additionally merges a
//! [`PrefetchSchedule`] — per-access prefetch-fill candidates computed by
//! the caller (e.g. by replaying a [`crate::prefetch::StridePrefetcher`]
//! over the demand stream) — into the pass. A prefetch fill is a
//! *conditional* insert: it fills at MRU when the line is absent and is a
//! no-op when it is resident, exactly the probe-then-fill protocol of
//! `GpuHierarchy::l1_prefetch`. Per class it is classified like a
//! no-allocate store: absent everywhere → uniform fill, resident
//! everywhere → uniform skip, anything else → divergent, exact replay.
//! A demand load that lands in the divergence band *while carrying
//! candidates* also diverges, because the hierarchy fills candidates
//! between the lookup and the demand fill: the relative insertion order
//! of the line and its candidates differs between hit- and
//! miss-geometries of the class.
//!
//! # FIFO insertion order
//!
//! FIFO is **not** a stack algorithm (Bélády's anomaly: a larger FIFO
//! cache can miss where a smaller one hits), so no unconditional
//! inclusion argument exists. What does hold: FIFO hits never change
//! replacement state, so as long as every allocating access either
//! misses *every* geometry of a set-count class (uniform insert) or hits
//! every one of them (uniform no-op), all geometries of the class insert
//! the same line sequence and an `a`-way FIFO set holds exactly the `a`
//! newest insertions — the top-`a` prefix of one insertion-ordered class
//! list. [`evaluate_fifo_multi`] runs that pass and, the moment an
//! allocating access hits only part of a class (the insertion sequences
//! would fork), marks the class divergent and replays its geometries
//! exactly — same fallback contract as the LRU path. No-allocate stores
//! never modify FIFO state (hits do not touch, misses do not insert), so
//! under the write-through L1 model they never diverge.

use crate::cache::{Cache, CacheConfig, ReplacementPolicy};
use gmap_trace::batch::{KernelMode, LANES};
use std::error::Error;
use std::fmt;

/// One demand access in a post-coalescing **line-index** stream (byte
/// address divided by the group's shared line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// Line index (byte address / line size).
    pub line: u64,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
}

impl LineAccess {
    /// Convenience constructor.
    pub fn new(line: u64, is_write: bool) -> Self {
        LineAccess { line, is_write }
    }
}

/// How the evaluated cache level treats stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write-back, write-allocate: stores allocate and touch recency like
    /// loads. Single-pass evaluation is unconditionally exact.
    Allocate,
    /// Write-through, no-allocate: stores never allocate; a store that
    /// hits touches recency. Divergent stores trigger an internal exact
    /// fallback (see module docs).
    NoAllocate,
}

/// Per-access prefetch-fill candidates for a demand stream, flattened
/// into one shared buffer. `for_access(i)` are the candidate lines the
/// prefetcher emitted for stream access `i`, in issue order — the
/// hierarchy fills them after the demand lookup and before the demand
/// fill, and that is exactly where the evaluators replay them.
#[derive(Debug, Clone)]
pub struct PrefetchSchedule {
    /// `offsets[i]..offsets[i + 1]` indexes `lines` for access `i`.
    offsets: Vec<usize>,
    /// Flattened candidate line indices.
    lines: Vec<u64>,
}

impl Default for PrefetchSchedule {
    fn default() -> Self {
        Self::new()
    }
}

impl PrefetchSchedule {
    /// An empty schedule covering zero accesses.
    pub fn new() -> Self {
        PrefetchSchedule {
            offsets: vec![0],
            lines: Vec::new(),
        }
    }

    /// Appends the candidate list of the next access.
    pub fn push(&mut self, candidates: &[u64]) {
        self.lines.extend_from_slice(candidates);
        self.offsets.push(self.lines.len());
    }

    /// Resets to an empty schedule, keeping the allocations. Bulk
    /// replays derive one schedule per prefetcher config over
    /// multi-million access streams and reuse a single buffer.
    pub fn clear(&mut self) {
        self.lines.clear();
        self.offsets.clear();
        self.offsets.push(0);
    }

    /// Number of accesses covered.
    pub fn num_accesses(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total candidate count across all accesses.
    pub fn total_candidates(&self) -> usize {
        self.lines.len()
    }

    /// Candidate lines of access `i`.
    pub fn for_access(&self, i: usize) -> &[u64] {
        &self.lines[self.offsets[i]..self.offsets[i + 1]]
    }
}

/// Exact demand counters for one evaluated geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeomCounts {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Load accesses.
    pub reads: u64,
    /// Store accesses.
    pub writes: u64,
}

impl GeomCounts {
    /// Accumulates another counter set (e.g. the same geometry evaluated
    /// over several per-core streams).
    pub fn merge(&mut self, other: &GeomCounts) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.reads += other.reads;
        self.writes += other.writes;
    }

    /// Demand miss rate in `[0, 1]`; 0 for an untouched geometry.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Result of [`evaluate_lru_multi`] and friends.
#[derive(Debug, Clone)]
pub struct MultiEvalResult {
    /// Per-geometry counters, aligned with the input `configs` slice.
    pub counts: Vec<GeomCounts>,
    /// `true` if a divergent access forced the exact per-configuration
    /// replay fallback for at least one set-count class; unaffected
    /// classes keep their single-pass counts.
    pub fell_back: bool,
}

/// Error constructing a multi-configuration evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackDistError {
    /// The config list was empty.
    NoConfigs,
    /// A config's replacement policy is not LRU (LRU evaluators).
    NotLru {
        /// Index of the offending config.
        index: usize,
    },
    /// A config's replacement policy is not FIFO ([`evaluate_fifo_multi`]).
    NotFifo {
        /// Index of the offending config.
        index: usize,
    },
    /// Configs do not share a single line size.
    MixedLineSizes {
        /// The first line size seen.
        expected: u64,
        /// The conflicting line size.
        found: u64,
    },
}

impl fmt::Display for StackDistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackDistError::NoConfigs => f.write_str("no cache configs to evaluate"),
            StackDistError::NotLru { index } => {
                write!(
                    f,
                    "config {index} is not LRU; single-pass evaluation requires LRU"
                )
            }
            StackDistError::NotFifo { index } => {
                write!(
                    f,
                    "config {index} is not FIFO; the FIFO evaluator requires FIFO"
                )
            }
            StackDistError::MixedLineSizes { expected, found } => write!(
                f,
                "configs must share one line size (saw {expected} and {found})"
            ),
        }
    }
}

impl Error for StackDistError {}

/// One distinct set-count class shared by one or more geometries: the
/// per-set ordered contents of the widest cache of the class. Under LRU
/// the order is recency (MRU first); under FIFO it is insertion age
/// (newest first). Either way, while the class stays uniform the top `a`
/// entries of each set are exactly the contents of the class's `a`-way
/// geometry.
struct SetClass {
    /// `num_sets - 1`, the set-index mask.
    mask: u64,
    /// Largest associativity among geometries with this set count.
    a_max: usize,
    /// Smallest associativity among geometries with this set count — an
    /// access whose state effect depends on hitting at or beyond this
    /// way-position diverges.
    a_min: usize,
    /// Divergence hit this class; its geometries will be replayed.
    dirty: bool,
    /// `num_sets × stride` recency-ordered line slots (way-position 0 =
    /// MRU). Both layouts keep the same ordering and the same
    /// `rotate_right` updates; they differ only in row width and scan
    /// kernel.
    lines: Vec<u64>,
    /// Live entries per set.
    occ: Vec<u32>,
    /// Chunked scan layout (the batched default): rows are padded to a
    /// whole number of [`LANES`] and located with an 8-lane match mask
    /// per chunk. The per-chunk early exit preserves the scalar scan's
    /// O(1) cost on the shallow hits GPU streams are dominated by,
    /// while misses compare a whole chunk per vector op instead of one
    /// element per iteration.
    chunked: bool,
    /// Per-set row width: `a_max` in the scalar list layout,
    /// `a_max.next_multiple_of(LANES)` in the chunked layout. Slots at
    /// positions `>= occ` are dead — all zero, since evictions
    /// overwrite in place and the padding tail is never written — and
    /// both scan kernels reject them by occupancy.
    stride: usize,
}

impl SetClass {
    /// Way-position of `line` within its set, or [`ABSENT`].
    fn locate(&self, line: u64) -> usize {
        let set = (line & self.mask) as usize;
        let base = set * self.stride;
        let occ = self.occ[set] as usize;
        if self.chunked {
            // 8-lane match scan in recency order: each chunk ORs eight
            // branch-free equality tests into a match mask. Entries are
            // ordered and unique, so the first match is the answer —
            // unless it lands in the dead tail (`>= occ`, all zero),
            // in which case every later match is deeper in the tail
            // and the line is absent. The per-chunk exit keeps shallow
            // hits as cheap as the scalar scan; the occupancy bound
            // stops a miss from touching padding-only chunks.
            let row = &self.lines[base..base + self.stride];
            let mut off = 0usize;
            for c in row.chunks_exact(LANES) {
                if off >= occ {
                    break;
                }
                let mut m = 0u32;
                for (lane, &l) in c.iter().enumerate() {
                    m |= u32::from(l == line) << lane;
                }
                if m != 0 {
                    let pos = off + m.trailing_zeros() as usize;
                    return if pos < occ { pos } else { ABSENT };
                }
                off += LANES;
            }
            ABSENT
        } else {
            self.lines[base..base + occ]
                .iter()
                .position(|&l| l == line)
                .unwrap_or(ABSENT)
        }
    }

    /// Moves the entry at way-position `pos` of `line`'s set to the front.
    fn rotate_to_front(&mut self, line: u64, pos: usize) {
        let base = (line & self.mask) as usize * self.stride;
        self.lines[base..=base + pos].rotate_right(1);
    }

    /// Inserts `line` at the front of its set, evicting the set's last
    /// entry if the widest cache is full.
    fn insert_front(&mut self, line: u64) {
        let set = (line & self.mask) as usize;
        let base = set * self.stride;
        let n = self.occ[set] as usize;
        if n < self.a_max {
            self.occ[set] += 1;
        }
        let end = (n + 1).min(self.a_max);
        self.lines[base..base + end].rotate_right(1);
        self.lines[base] = line;
    }

    /// Applies the conditional prefetch fills of one access: absent
    /// everywhere → insert at front, resident everywhere → skip, resident
    /// in only part of the class → divergent (marks the class dirty and
    /// stops).
    fn apply_prefetches(&mut self, cands: &[u64]) {
        for &cand in cands {
            match self.locate(cand) {
                q if q == ABSENT => self.insert_front(cand),
                q if q < self.a_min => {}
                _ => {
                    self.dirty = true;
                    return;
                }
            }
        }
    }

    /// The demand fill of a line that missed the whole class *before* the
    /// candidate fills ran. A candidate equal to the demand line may have
    /// just inserted it, and `Cache::demand_fill` is a no-op on resident
    /// lines (no recency touch) — so re-locate instead of inserting
    /// unconditionally: absent everywhere → insert, resident everywhere →
    /// skip, resident in only part of the class → divergent.
    fn demand_fill_after_prefetches(&mut self, line: u64, cands: &[u64]) {
        if !cands.is_empty() {
            match self.locate(line) {
                q if q == ABSENT => {}
                q if q < self.a_min => return,
                _ => {
                    self.dirty = true;
                    return;
                }
            }
        }
        self.insert_front(line);
    }
}

/// Per-geometry view onto the set classes.
struct GeomView {
    /// Index into the set-class table.
    class: usize,
    /// Associativity.
    assoc: usize,
}

/// Which single-pass variant a class list models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PassPolicy {
    /// Recency order; hits rotate to MRU.
    Lru,
    /// Insertion order; hits never touch state.
    Fifo,
}

/// Evaluate every LRU geometry in `configs` (which must share one line
/// size) over `stream` in a single pass. Returns exact per-geometry
/// demand counters — identical to replaying each config through
/// [`Cache`] with the matching write policy.
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-LRU policy.
pub fn evaluate_lru_multi(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
) -> Result<MultiEvalResult, StackDistError> {
    evaluate_lru_multi_with_mode(configs, stream, mode, gmap_trace::default_mode())
}

/// [`evaluate_lru_multi`] with an explicit [`KernelMode`]. The scalar
/// path is the per-view reference loop; the batched path buckets
/// way-positions into per-class histograms and runs the unrolled locate
/// scan. Both produce identical counts (differential proptests in the
/// tier-1 suite).
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-LRU policy.
pub fn evaluate_lru_multi_with_mode(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
    kmode: KernelMode,
) -> Result<MultiEvalResult, StackDistError> {
    evaluate(configs, stream, None, mode, PassPolicy::Lru, kmode)
}

/// Like [`evaluate_lru_multi`], but additionally replays the per-access
/// prefetch-fill candidates of `schedule` in hierarchy order (demand
/// lookup → candidate fills → demand fill). Exact for every geometry —
/// divergent classes fall back to per-config replay internally.
///
/// # Panics
///
/// Panics if `schedule` does not cover exactly `stream.len()` accesses.
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-LRU policy.
pub fn evaluate_lru_prefetch_multi(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    schedule: &PrefetchSchedule,
    mode: WriteMode,
) -> Result<MultiEvalResult, StackDistError> {
    evaluate_lru_prefetch_multi_with_mode(
        configs,
        stream,
        schedule,
        mode,
        gmap_trace::default_mode(),
    )
}

/// [`evaluate_lru_prefetch_multi`] with an explicit [`KernelMode`].
///
/// # Panics
///
/// Panics if `schedule` does not cover exactly `stream.len()` accesses.
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-LRU policy.
pub fn evaluate_lru_prefetch_multi_with_mode(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    schedule: &PrefetchSchedule,
    mode: WriteMode,
    kmode: KernelMode,
) -> Result<MultiEvalResult, StackDistError> {
    assert_eq!(
        schedule.num_accesses(),
        stream.len(),
        "prefetch schedule must cover the demand stream"
    );
    evaluate(
        configs,
        stream,
        Some(schedule),
        mode,
        PassPolicy::Lru,
        kmode,
    )
}

/// Evaluate every FIFO geometry in `configs` (which must share one line
/// size) over `stream` in a single insertion-order pass, falling back to
/// exact per-config replay for any set-count class where the insertion
/// sequences would fork (see module docs — FIFO is not a stack
/// algorithm). Counts are always exact.
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-FIFO policy.
pub fn evaluate_fifo_multi(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
) -> Result<MultiEvalResult, StackDistError> {
    evaluate_fifo_multi_with_mode(configs, stream, mode, gmap_trace::default_mode())
}

/// [`evaluate_fifo_multi`] with an explicit [`KernelMode`].
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-FIFO policy.
pub fn evaluate_fifo_multi_with_mode(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
    kmode: KernelMode,
) -> Result<MultiEvalResult, StackDistError> {
    evaluate(configs, stream, None, mode, PassPolicy::Fifo, kmode)
}

fn evaluate(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    schedule: Option<&PrefetchSchedule>,
    mode: WriteMode,
    policy: PassPolicy,
    kmode: KernelMode,
) -> Result<MultiEvalResult, StackDistError> {
    validate_configs(configs, policy)?;
    let (mut counts, dirty) = single_pass(configs, stream, schedule, mode, policy, kmode);
    let fell_back = !dirty.is_empty();
    if fell_back {
        // Replay only the geometries whose set-count class diverged; the
        // rest keep their (exact) single-pass counts.
        let sub: Vec<CacheConfig> = dirty.iter().map(|&i| configs[i]).collect();
        for (&i, c) in dirty
            .iter()
            .zip(replay_per_config_prefetch(&sub, stream, schedule, mode))
        {
            counts[i] = c;
        }
    }
    Ok(MultiEvalResult { counts, fell_back })
}

fn validate_configs(configs: &[CacheConfig], policy: PassPolicy) -> Result<(), StackDistError> {
    let first = configs.first().ok_or(StackDistError::NoConfigs)?;
    for (i, c) in configs.iter().enumerate() {
        match policy {
            PassPolicy::Lru if c.policy != ReplacementPolicy::Lru => {
                return Err(StackDistError::NotLru { index: i });
            }
            PassPolicy::Fifo if c.policy != ReplacementPolicy::Fifo => {
                return Err(StackDistError::NotFifo { index: i });
            }
            _ => {}
        }
        if c.line_size != first.line_size {
            return Err(StackDistError::MixedLineSizes {
                expected: first.line_size,
                found: c.line_size,
            });
        }
    }
    Ok(())
}

/// Sentinel way-position for "line absent from this class".
const ABSENT: usize = usize::MAX;

/// The shared single pass. Returns per-geometry counts plus the indices
/// of configs whose set-count class hit a divergent access (their counts
/// are garbage and must be recomputed by replay).
///
/// Counting strategy depends on `kmode`:
///
/// - **Scalar** (the reference): per access, one branchy compare per
///   *geometry view* (`O(configs)` per access).
/// - **Batched**: per access, one histogram bump per *set-count class* —
///   `pos_hist[class][min(pos, a_max)] += 1`, where bucket `a_max` means
///   "absent". A view of associativity `a` then hits exactly the accesses
///   bucketed below `a`, so per-view hit counts fall out of an
///   `O(configs × a_max)` prefix-sum epilogue, and reads/writes are
///   counted once for the whole stream instead of once per view. The
///   locate scan also switches to the unrolled match-mask kernel.
fn single_pass(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    schedule: Option<&PrefetchSchedule>,
    mode: WriteMode,
    policy: PassPolicy,
    kmode: KernelMode,
) -> (Vec<GeomCounts>, Vec<usize>) {
    // Build the distinct set-count classes and per-geometry views.
    let mut classes: Vec<SetClass> = Vec::new();
    let mut views: Vec<GeomView> = Vec::with_capacity(configs.len());
    for cfg in configs {
        let sets = cfg.num_sets();
        let assoc = cfg.assoc as usize;
        let class = match classes.iter().position(|c| c.mask == sets - 1) {
            Some(i) => {
                classes[i].a_max = classes[i].a_max.max(assoc);
                classes[i].a_min = classes[i].a_min.min(assoc);
                i
            }
            None => {
                classes.push(SetClass {
                    mask: sets - 1,
                    a_max: assoc,
                    a_min: assoc,
                    dirty: false,
                    lines: Vec::new(),
                    occ: Vec::new(),
                    chunked: false,
                    stride: 0,
                });
                classes.len() - 1
            }
        };
        views.push(GeomView { class, assoc });
    }
    let uniform_writes = mode == WriteMode::Allocate;
    let batched = kmode.is_batched();
    for class in classes.iter_mut() {
        let sets = (class.mask + 1) as usize;
        // Chunked scanning only pays once a row spans more than one
        // vector: an `a_max <= LANES` row is at most one compare either
        // way, while padding it to a full chunk would inflate the
        // recency arrays (8x for direct-mapped classes — enough to push
        // fig6b's 64k-set classes out of the host cache).
        class.chunked = batched && class.a_max > LANES;
        class.stride = if class.chunked {
            class.a_max.next_multiple_of(LANES)
        } else {
            class.a_max
        };
        class.lines = vec![0; sets * class.stride];
        class.occ = vec![0; sets];
    }
    let mut counts = vec![GeomCounts::default(); configs.len()];
    // Reused per-access scratch: the line's way-position per class.
    let mut positions = vec![ABSENT; classes.len()];
    // Batched counting: per-class way-position histogram, bucket
    // `min(pos, a_max)` (bucket a_max = absent). Flattened with one
    // `a_max + 1`-wide row per class.
    let hist_stride = classes.iter().map(|c| c.a_max).max().unwrap_or(0) + 1;
    let mut pos_hist = if batched {
        vec![0u64; classes.len() * hist_stride]
    } else {
        Vec::new()
    };

    for (i, acc) in stream.iter().enumerate() {
        // Phase 1: locate the line in each class's widest cache (the
        // layout — and with it the scan kernel — follows `kmode`).
        for (pos, class) in positions.iter_mut().zip(classes.iter()) {
            *pos = if class.dirty {
                ABSENT
            } else {
                class.locate(acc.line)
            };
        }

        // Phase 2: count. A way-position `p` hits every geometry of the
        // class with associativity > p. (Dirty-class counts are garbage
        // and get overwritten by the replay fallback.)
        if batched {
            // One bump per class; the per-view expansion happens in the
            // epilogue below.
            for (ci, (&pos, class)) in positions.iter().zip(classes.iter()).enumerate() {
                pos_hist[ci * hist_stride + pos.min(class.a_max)] += 1;
            }
        } else {
            for (view, c) in views.iter().zip(counts.iter_mut()) {
                c.accesses += 1;
                if acc.is_write {
                    c.writes += 1;
                } else {
                    c.reads += 1;
                }
                if positions[view.class] < view.assoc {
                    c.hits += 1;
                } else {
                    c.misses += 1;
                }
            }
        }

        // Phase 3: update replacement state per class.
        let cands = schedule.map_or(&[][..], |s| s.for_access(i));
        for (&pos, class) in positions.iter().zip(classes.iter_mut()) {
            if class.dirty {
                continue;
            }
            match policy {
                PassPolicy::Lru => update_lru(class, acc, pos, cands, uniform_writes),
                PassPolicy::Fifo => update_fifo(class, acc, pos, cands, uniform_writes),
            }
        }
    }

    if batched {
        // Epilogue: expand the class histograms into per-view counters.
        // Reads/writes are stream-level facts, identical for every view.
        let n = stream.len() as u64;
        let writes = count_stream_writes(stream);
        let reads = n - writes;
        for (view, c) in views.iter().zip(counts.iter_mut()) {
            let row = &pos_hist[view.class * hist_stride..(view.class + 1) * hist_stride];
            let hits: u64 = row[..view.assoc.min(row.len())].iter().sum();
            c.accesses = n;
            c.hits = hits;
            c.misses = n - hits;
            c.reads = reads;
            c.writes = writes;
        }
    }

    let dirty: Vec<usize> = views
        .iter()
        .enumerate()
        .filter(|(_, v)| classes[v.class].dirty)
        .map(|(i, _)| i)
        .collect();
    (counts, dirty)
}

/// Store count of a demand stream, 8 lanes at a time (branch-free lane
/// body; `is_write` contributes 0 or 1 per lane).
fn count_stream_writes(stream: &[LineAccess]) -> u64 {
    let mut acc = [0u64; LANES];
    let mut chunks = stream.chunks_exact(LANES);
    for c in &mut chunks {
        for lane in 0..LANES {
            acc[lane] += u64::from(c[lane].is_write);
        }
    }
    acc.iter().sum::<u64>() + chunks.remainder().iter().filter(|a| a.is_write).count() as u64
}

/// LRU state update for one access against one class.
fn update_lru(class: &mut SetClass, acc: &LineAccess, pos: usize, cands: &[u64], alloc_w: bool) {
    if acc.is_write {
        // Demand-store effect first (prefetchers in this hierarchy only
        // trigger on loads, but keep the write-then-candidates order in
        // lockstep with the replay fallback for generality).
        if pos != ABSENT {
            if alloc_w || pos < class.a_min {
                // Uniform recency touch: every geometry of the class that
                // holds the line moves it to MRU, and (for allocating
                // stores) the rest re-allocate it at MRU — either way the
                // class list rotates to front.
                class.rotate_to_front(acc.line, pos);
            } else {
                // No-allocate store hitting some ways of the class but
                // not all: LRU inclusion breaks for this class.
                class.dirty = true;
                return;
            }
        } else if alloc_w {
            class.insert_front(acc.line);
        }
        // A no-allocate store that misses the whole class touches
        // nothing — exact.
        class.apply_prefetches(cands);
    } else if pos == ABSENT {
        // Cold/evicted load, miss in every geometry: the hierarchy fills
        // prefetch candidates between the lookup and the demand fill.
        class.apply_prefetches(cands);
        if !class.dirty {
            class.demand_fill_after_prefetches(acc.line, cands);
        }
    } else if pos < class.a_min {
        // Hit everywhere: touch, then candidate fills land above.
        class.rotate_to_front(acc.line, pos);
        class.apply_prefetches(cands);
    } else if cands.is_empty() {
        // Load in the divergence band with no candidates stays uniform:
        // hit-geometries touch to MRU, miss-geometries refill at MRU —
        // the class list rotates to front either way.
        class.rotate_to_front(acc.line, pos);
    } else {
        // Load in the divergence band *with* candidates: hit-geometries
        // order the line below its candidates, miss-geometries above.
        class.dirty = true;
    }
}

/// FIFO state update for one access against one class.
fn update_fifo(class: &mut SetClass, acc: &LineAccess, pos: usize, cands: &[u64], alloc_w: bool) {
    if acc.is_write && !alloc_w {
        // No-allocate store: FIFO hits do not touch and misses do not
        // insert — no geometry changes state, whatever `pos` is.
        class.apply_prefetches(cands);
    } else if acc.is_write {
        // Allocating store, same uniformity condition as a load.
        if pos == ABSENT {
            class.insert_front(acc.line);
        } else if pos >= class.a_min {
            class.dirty = true;
            return;
        }
        class.apply_prefetches(cands);
    } else if pos == ABSENT {
        // Miss everywhere: every geometry inserts, in hierarchy order
        // (candidate fills before the demand fill).
        class.apply_prefetches(cands);
        if !class.dirty {
            class.demand_fill_after_prefetches(acc.line, cands);
        }
    } else if pos < class.a_min {
        // Hit everywhere: FIFO hits leave the queue untouched.
        class.apply_prefetches(cands);
    } else {
        // Hit in the wide geometries, miss-and-insert in the narrow
        // ones: the insertion sequences fork — Bélády territory.
        class.dirty = true;
    }
}

/// Exact per-configuration replay through [`Cache`] — the fallback for
/// divergent accesses, and the reference the single pass is tested
/// against. The replacement policy comes from each config.
pub fn replay_per_config(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
) -> Vec<GeomCounts> {
    replay_per_config_prefetch(configs, stream, None, mode)
}

/// [`replay_per_config`] with per-access prefetch-fill candidates,
/// mirroring `GpuHierarchy`'s L1 path: demand lookup, then conditional
/// candidate fills, then the demand fill of a missing line.
pub fn replay_per_config_prefetch(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    schedule: Option<&PrefetchSchedule>,
    mode: WriteMode,
) -> Vec<GeomCounts> {
    use crate::cache::AccessRequest;
    configs
        .iter()
        .map(|cfg| {
            let mut cache = Cache::new(*cfg);
            for (i, acc) in stream.iter().enumerate() {
                let cands = schedule.map_or(&[][..], |s| s.for_access(i));
                if acc.is_write {
                    match mode {
                        WriteMode::NoAllocate => {
                            cache.access_no_allocate(acc.line, true);
                        }
                        WriteMode::Allocate => {
                            cache.access(acc.line, true);
                        }
                    }
                    for &cand in cands {
                        cache.prefetch_fill(cand);
                    }
                } else {
                    let hit = cache
                        .request(AccessRequest {
                            line: acc.line,
                            is_write: false,
                            allocate_on_miss: false,
                            mark_dirty: false,
                        })
                        .hit;
                    // `prefetch_fill` is a no-op on resident lines —
                    // exactly the probe-then-fill the hierarchy does.
                    for &cand in cands {
                        cache.prefetch_fill(cand);
                    }
                    if !hit {
                        cache.demand_fill(acc.line);
                    }
                }
            }
            let s = cache.stats();
            GeomCounts {
                accesses: s.accesses,
                hits: s.hits,
                misses: s.misses,
                reads: s.reads,
                writes: s.writes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(size: u64, assoc: u32, line: u64) -> CacheConfig {
        CacheConfig::new(size, assoc, line, ReplacementPolicy::Lru).expect("valid config")
    }

    fn fifo(size: u64, assoc: u32, line: u64) -> CacheConfig {
        CacheConfig::new(size, assoc, line, ReplacementPolicy::Fifo).expect("valid config")
    }

    /// A small deterministic mixed-locality stream.
    fn synth_stream(len: usize, span: u64, write_every: usize) -> Vec<LineAccess> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix strided and random reuse.
                let line = if i % 3 == 0 {
                    (i as u64 / 3) % span
                } else {
                    state % span
                };
                LineAccess {
                    line,
                    is_write: write_every > 0 && i % write_every == 0,
                }
            })
            .collect()
    }

    /// A stride-heavy schedule: every fourth load carries two sequential
    /// candidates, the way a trained stride prefetcher would.
    fn synth_schedule(stream: &[LineAccess]) -> PrefetchSchedule {
        let mut sched = PrefetchSchedule::new();
        for (i, acc) in stream.iter().enumerate() {
            if !acc.is_write && i % 4 == 0 {
                sched.push(&[acc.line + 1, acc.line + 2]);
            } else {
                sched.push(&[]);
            }
        }
        sched
    }

    #[test]
    fn validation_rejects_bad_groups() {
        assert_eq!(
            evaluate_lru_multi(&[], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::NoConfigs
        );
        let a = lru(1024, 2, 64);
        let b = lru(1024, 2, 128);
        assert!(matches!(
            evaluate_lru_multi(&[a, b], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::MixedLineSizes { .. }
        ));
        let f = fifo(1024, 2, 64);
        assert!(matches!(
            evaluate_lru_multi(&[a, f], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::NotLru { index: 1 }
        ));
        assert!(matches!(
            evaluate_fifo_multi(&[f, a], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::NotFifo { index: 1 }
        ));
        assert_eq!(
            evaluate_fifo_multi(&[], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::NoConfigs
        );
    }

    #[test]
    fn read_only_matches_replay_across_grid() {
        let configs = [
            lru(512, 1, 64), // direct-mapped
            lru(512, 8, 64), // fully associative (1 set)
            lru(1024, 2, 64),
            lru(4096, 4, 64),
            lru(8192, 16, 64),
        ];
        let stream = synth_stream(4000, 300, 0);
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        assert!(!result.fell_back);
        let reference = replay_per_config(&configs, &stream, WriteMode::Allocate);
        assert_eq!(result.counts, reference);
    }

    #[test]
    fn allocate_mode_with_writes_is_single_pass_and_exact() {
        let configs = [lru(512, 2, 64), lru(2048, 4, 64), lru(8192, 8, 64)];
        let stream = synth_stream(4000, 250, 3);
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        assert!(!result.fell_back, "write-allocate must never diverge");
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::Allocate)
        );
    }

    #[test]
    fn no_allocate_writes_stay_exact_even_when_divergent() {
        let configs = [lru(256, 1, 64), lru(512, 2, 64), lru(4096, 4, 64)];
        let stream = synth_stream(4000, 200, 4);
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
    }

    #[test]
    fn divergent_store_triggers_fallback() {
        // Two single-set geometries with 1 and 2 ways. Load a then b:
        // stack is [b, a]. A store to `a` hits the 2-way cache but misses
        // the 1-way one — divergent by construction.
        let configs = [lru(64, 1, 64), lru(128, 2, 64)];
        let stream = vec![
            LineAccess::new(0, false),
            LineAccess::new(1, false),
            LineAccess::new(0, true),
        ];
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert!(result.fell_back);
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
    }

    #[test]
    fn saturated_walk_still_restacks_loads() {
        // 1-set 1-way cache: a load to a deep line saturates instantly,
        // but the load must still move the line to MRU.
        let configs = [lru(64, 1, 64)];
        let stream = vec![
            LineAccess::new(0, false),
            LineAccess::new(1, false),
            LineAccess::new(0, false), // deep hit walk, saturates, restacks
            LineAccess::new(0, false), // must now be a hit
        ];
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
        assert_eq!(result.counts[0].hits, 1);
    }

    #[test]
    fn counts_track_reads_and_writes() {
        let configs = [lru(1024, 4, 64)];
        let stream = synth_stream(1000, 100, 5);
        let expected_writes = stream.iter().filter(|a| a.is_write).count() as u64;
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        let c = &result.counts[0];
        assert_eq!(c.accesses, 1000);
        assert_eq!(c.writes, expected_writes);
        assert_eq!(c.reads, 1000 - expected_writes);
        assert_eq!(c.hits + c.misses, c.accesses);
        assert!(c.miss_rate() > 0.0 && c.miss_rate() <= 1.0);
    }

    #[test]
    fn prefetch_schedule_round_trips() {
        let mut s = PrefetchSchedule::new();
        assert_eq!(s.num_accesses(), 0);
        s.push(&[1, 2]);
        s.push(&[]);
        s.push(&[9]);
        assert_eq!(s.num_accesses(), 3);
        assert_eq!(s.total_candidates(), 3);
        assert_eq!(s.for_access(0), &[1, 2]);
        assert_eq!(s.for_access(1), &[] as &[u64]);
        assert_eq!(s.for_access(2), &[9]);
    }

    #[test]
    #[should_panic(expected = "cover the demand stream")]
    fn prefetch_schedule_must_cover_stream() {
        let configs = [lru(1024, 4, 64)];
        let stream = synth_stream(10, 8, 0);
        let sched = PrefetchSchedule::new();
        let _ = evaluate_lru_prefetch_multi(&configs, &stream, &sched, WriteMode::Allocate);
    }

    #[test]
    fn prefetched_lru_matches_replay_across_grid() {
        for write_every in [0, 5] {
            for mode in [WriteMode::Allocate, WriteMode::NoAllocate] {
                let configs = [
                    lru(256, 1, 64),
                    lru(512, 2, 64),
                    lru(1024, 4, 64),
                    lru(4096, 4, 64),
                    lru(4096, 16, 64),
                ];
                let stream = synth_stream(3000, 220, write_every);
                let sched = synth_schedule(&stream);
                assert!(sched.total_candidates() > 0);
                let result = evaluate_lru_prefetch_multi(&configs, &stream, &sched, mode).unwrap();
                assert_eq!(
                    result.counts,
                    replay_per_config_prefetch(&configs, &stream, Some(&sched), mode),
                    "write_every={write_every} mode={mode:?}"
                );
            }
        }
    }

    #[test]
    fn divergent_prefetch_triggers_fallback_and_stays_exact() {
        // [b, a] in the 2-way cache, [b] in the 1-way one; a prefetch of
        // `a` is a no-op in the former and a fill in the latter.
        let configs = [lru(64, 1, 64), lru(128, 2, 64)];
        let stream = vec![
            LineAccess::new(0, false),
            LineAccess::new(1, false),
            LineAccess::new(7, false), // carries the divergent candidate
        ];
        let mut sched = PrefetchSchedule::new();
        sched.push(&[]);
        sched.push(&[]);
        sched.push(&[0]);
        let result =
            evaluate_lru_prefetch_multi(&configs, &stream, &sched, WriteMode::NoAllocate).unwrap();
        assert!(result.fell_back);
        assert_eq!(
            result.counts,
            replay_per_config_prefetch(&configs, &stream, Some(&sched), WriteMode::NoAllocate)
        );
    }

    #[test]
    fn fifo_matches_replay_across_grid() {
        for write_every in [0, 4] {
            for mode in [WriteMode::Allocate, WriteMode::NoAllocate] {
                let configs = [
                    fifo(256, 1, 64),
                    fifo(512, 2, 64),
                    fifo(1024, 4, 64),
                    fifo(2048, 8, 64),
                    fifo(4096, 4, 64),
                ];
                let stream = synth_stream(4000, 200, write_every);
                let result = evaluate_fifo_multi(&configs, &stream, mode).unwrap();
                assert_eq!(
                    result.counts,
                    replay_per_config(&configs, &stream, mode),
                    "write_every={write_every} mode={mode:?}"
                );
            }
        }
    }

    #[test]
    fn fifo_belady_anomaly_forces_fallback_but_stays_exact() {
        // The classic FIFO anomaly string over 3- and 4-way single-set
        // caches: the insertion sequences fork, so the class must fall
        // back — and the counts must still match per-config replay
        // (which exhibits the anomaly).
        let configs = [fifo(3 * 64, 3, 64), fifo(4 * 64, 4, 64)];
        let refs = [1u64, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5];
        let stream: Vec<LineAccess> = refs.iter().map(|&l| LineAccess::new(l, false)).collect();
        let result = evaluate_fifo_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        assert!(result.fell_back, "the anomaly string must diverge");
        let reference = replay_per_config(&configs, &stream, WriteMode::Allocate);
        assert_eq!(result.counts, reference);
        assert!(
            reference[1].misses > reference[0].misses,
            "Bélády's anomaly: the larger FIFO cache misses more"
        );
    }

    #[test]
    fn fifo_no_allocate_stores_never_dirty_a_class() {
        // Same construction that forces the LRU divergent-store fallback;
        // under FIFO a no-allocate store changes nothing anywhere.
        let configs = [fifo(64, 1, 64), fifo(128, 2, 64)];
        let stream = vec![
            LineAccess::new(0, false),
            LineAccess::new(1, false),
            LineAccess::new(0, true),
        ];
        let result = evaluate_fifo_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert!(!result.fell_back, "FIFO state ignores no-allocate stores");
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
    }

    #[test]
    fn fifo_uniform_single_geometry_never_falls_back() {
        // One geometry per set count: a_min == a_max, so the divergence
        // band is empty and the pass stays single-pass by construction.
        let configs = [fifo(1024, 4, 64), fifo(2048, 4, 64)];
        let stream = synth_stream(3000, 300, 6);
        let result = evaluate_fifo_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert!(!result.fell_back);
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
    }
}
