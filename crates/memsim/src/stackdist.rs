//! Single-pass multi-configuration LRU cache evaluation (Mattson stack
//! distances).
//!
//! The classic Mattson inclusion result: under true LRU with bit-selected
//! set indexing, the content of an `(S sets, a ways)` cache is exactly
//! the `a` most-recently-used lines of each set of an `(S, A)` cache for
//! any `A ≥ a`. So per distinct set count `S` the evaluator keeps one
//! per-set recency list capped at `A_max` (the largest associativity
//! sharing that set count); an access that hits at way-position `p` hits
//! every geometry of the class with associativity `> p`. One pass over
//! the access stream therefore yields exact hit/miss counts for an
//! arbitrary grid of LRU geometries sharing a line size — turning an
//! O(configs)-pass sweep into an O(line sizes)-pass sweep, at
//! O(set-count classes × A_max) work per access.
//!
//! Two write models are supported:
//!
//! - [`WriteMode::Allocate`] (write-back, write-allocate — the L2 in this
//!   hierarchy): writes allocate and touch recency exactly like reads, so
//!   the inclusion property holds unconditionally and the single pass is
//!   always exact.
//! - [`WriteMode::NoAllocate`] (write-through, no-allocate — the L1):
//!   a write's recency side-effect depends on whether it *hit*, which is
//!   geometry-dependent. Each write is classified per class during the
//!   pass:
//!   * absent from the class list → miss in every geometry of the class,
//!     no recency change (exact);
//!   * present at a position every associativity of the class covers →
//!     uniform hit, move to MRU (exact);
//!   * anything else is *divergent for that class*: inclusion breaks, so
//!     the class's geometries are transparently re-evaluated by exact
//!     per-configuration replay through [`crate::cache::Cache`] — the
//!     returned counts are **always** exact; divergence only costs
//!     speed, never correctness, and only for the affected class.

use crate::cache::{Cache, CacheConfig, ReplacementPolicy};
use std::error::Error;
use std::fmt;

/// One demand access in a post-coalescing **line-index** stream (byte
/// address divided by the group's shared line size).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// Line index (byte address / line size).
    pub line: u64,
    /// Store (`true`) or load (`false`).
    pub is_write: bool,
}

impl LineAccess {
    /// Convenience constructor.
    pub fn new(line: u64, is_write: bool) -> Self {
        LineAccess { line, is_write }
    }
}

/// How the evaluated cache level treats stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteMode {
    /// Write-back, write-allocate: stores allocate and touch recency like
    /// loads. Single-pass evaluation is unconditionally exact.
    Allocate,
    /// Write-through, no-allocate: stores never allocate; a store that
    /// hits touches recency. Divergent stores trigger an internal exact
    /// fallback (see module docs).
    NoAllocate,
}

/// Exact demand counters for one evaluated geometry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GeomCounts {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Load accesses.
    pub reads: u64,
    /// Store accesses.
    pub writes: u64,
}

impl GeomCounts {
    /// Accumulates another counter set (e.g. the same geometry evaluated
    /// over several per-core streams).
    pub fn merge(&mut self, other: &GeomCounts) {
        self.accesses += other.accesses;
        self.hits += other.hits;
        self.misses += other.misses;
        self.reads += other.reads;
        self.writes += other.writes;
    }

    /// Demand miss rate in `[0, 1]`; 0 for an untouched geometry.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Result of [`evaluate_lru_multi`].
#[derive(Debug, Clone)]
pub struct MultiEvalResult {
    /// Per-geometry counters, aligned with the input `configs` slice.
    pub counts: Vec<GeomCounts>,
    /// `true` if a divergent no-allocate store forced the exact
    /// per-configuration replay fallback for at least one set-count
    /// class; unaffected classes keep their single-pass counts.
    pub fell_back: bool,
}

/// Error constructing a multi-configuration evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StackDistError {
    /// The config list was empty.
    NoConfigs,
    /// A config's replacement policy is not LRU.
    NotLru {
        /// Index of the offending config.
        index: usize,
    },
    /// Configs do not share a single line size.
    MixedLineSizes {
        /// The first line size seen.
        expected: u64,
        /// The conflicting line size.
        found: u64,
    },
}

impl fmt::Display for StackDistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StackDistError::NoConfigs => f.write_str("no cache configs to evaluate"),
            StackDistError::NotLru { index } => {
                write!(
                    f,
                    "config {index} is not LRU; single-pass evaluation requires LRU"
                )
            }
            StackDistError::MixedLineSizes { expected, found } => write!(
                f,
                "configs must share one line size (saw {expected} and {found})"
            ),
        }
    }
}

impl Error for StackDistError {}

/// One distinct set-count class shared by one or more geometries: the
/// per-set MRU-ordered contents of the widest cache of the class. By LRU
/// inclusion, the top `a` entries of each set are exactly the contents of
/// the class's `a`-way geometry.
struct SetClass {
    /// `num_sets - 1`, the set-index mask.
    mask: u64,
    /// Largest associativity among geometries with this set count.
    a_max: usize,
    /// Smallest associativity among geometries with this set count — a
    /// no-allocate store hitting at or beyond this way-position diverges.
    a_min: usize,
    /// Divergence hit this class; its geometries will be replayed.
    dirty: bool,
    /// `num_sets × a_max` line slots, MRU-first within each set.
    lines: Vec<u64>,
    /// Live entries per set.
    occ: Vec<u32>,
}

/// Per-geometry view onto the set classes.
struct GeomView {
    /// Index into the set-class table.
    class: usize,
    /// Associativity.
    assoc: usize,
}

/// Evaluate every LRU geometry in `configs` (which must share one line
/// size) over `stream` in a single pass. Returns exact per-geometry
/// demand counters — identical to replaying each config through
/// [`Cache`] with the matching write policy.
///
/// # Errors
///
/// Returns [`StackDistError`] if `configs` is empty, mixes line sizes, or
/// contains a non-LRU policy.
pub fn evaluate_lru_multi(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
) -> Result<MultiEvalResult, StackDistError> {
    validate_configs(configs)?;
    let (mut counts, dirty) = single_pass(configs, stream, mode);
    let fell_back = !dirty.is_empty();
    if fell_back {
        // Replay only the geometries whose set-count class diverged; the
        // rest keep their (exact) single-pass counts.
        let sub: Vec<CacheConfig> = dirty.iter().map(|&i| configs[i]).collect();
        for (&i, c) in dirty.iter().zip(replay_per_config(&sub, stream, mode)) {
            counts[i] = c;
        }
    }
    Ok(MultiEvalResult { counts, fell_back })
}

fn validate_configs(configs: &[CacheConfig]) -> Result<(), StackDistError> {
    let first = configs.first().ok_or(StackDistError::NoConfigs)?;
    for (i, c) in configs.iter().enumerate() {
        if c.policy != ReplacementPolicy::Lru {
            return Err(StackDistError::NotLru { index: i });
        }
        if c.line_size != first.line_size {
            return Err(StackDistError::MixedLineSizes {
                expected: first.line_size,
                found: c.line_size,
            });
        }
    }
    Ok(())
}

/// Sentinel way-position for "line absent from this class".
const ABSENT: usize = usize::MAX;

/// The Mattson pass. Returns per-geometry counts plus the indices of
/// configs whose set-count class hit a divergent no-allocate store (their
/// counts are garbage and must be recomputed by replay).
fn single_pass(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
) -> (Vec<GeomCounts>, Vec<usize>) {
    // Build the distinct set-count classes and per-geometry views.
    let mut classes: Vec<SetClass> = Vec::new();
    let mut views: Vec<GeomView> = Vec::with_capacity(configs.len());
    for cfg in configs {
        let sets = cfg.num_sets();
        let assoc = cfg.assoc as usize;
        let class = match classes.iter().position(|c| c.mask == sets - 1) {
            Some(i) => {
                classes[i].a_max = classes[i].a_max.max(assoc);
                classes[i].a_min = classes[i].a_min.min(assoc);
                i
            }
            None => {
                classes.push(SetClass {
                    mask: sets - 1,
                    a_max: assoc,
                    a_min: assoc,
                    dirty: false,
                    lines: Vec::new(),
                    occ: Vec::new(),
                });
                classes.len() - 1
            }
        };
        views.push(GeomView { class, assoc });
    }
    for class in classes.iter_mut() {
        let sets = (class.mask + 1) as usize;
        class.lines = vec![0; sets * class.a_max];
        class.occ = vec![0; sets];
    }

    let uniform_writes = mode == WriteMode::Allocate;
    let mut counts = vec![GeomCounts::default(); configs.len()];
    // Reused per-access scratch: the line's way-position per class.
    let mut positions = vec![ABSENT; classes.len()];

    for acc in stream {
        // Phase 1: locate the line in each class's widest cache.
        for (pos, class) in positions.iter_mut().zip(classes.iter()) {
            if class.dirty {
                *pos = ABSENT;
                continue;
            }
            let set = (acc.line & class.mask) as usize;
            let base = set * class.a_max;
            let ways = &class.lines[base..base + class.occ[set] as usize];
            *pos = ways.iter().position(|&l| l == acc.line).unwrap_or(ABSENT);
        }

        // Phase 2: count. A way-position `p` hits every geometry of the
        // class with associativity > p. (Dirty-class counts are garbage
        // and get overwritten by the replay fallback.)
        for (view, c) in views.iter().zip(counts.iter_mut()) {
            c.accesses += 1;
            if acc.is_write {
                c.writes += 1;
            } else {
                c.reads += 1;
            }
            if positions[view.class] < view.assoc {
                c.hits += 1;
            } else {
                c.misses += 1;
            }
        }

        // Phase 3: update recency per class.
        for (&pos, class) in positions.iter().zip(classes.iter_mut()) {
            if class.dirty {
                continue;
            }
            let set = (acc.line & class.mask) as usize;
            let base = set * class.a_max;
            if pos != ABSENT {
                if !acc.is_write || uniform_writes || pos < class.a_min {
                    // Uniform recency touch: every geometry of the class
                    // that holds the line moves it to MRU, and (for loads
                    // and allocating stores) the rest re-allocate it at
                    // MRU — either way the class list rotates to front.
                    class.lines[base..=base + pos].rotate_right(1);
                } else {
                    // No-allocate store hitting some ways of the class
                    // but not all: LRU inclusion breaks for this class.
                    class.dirty = true;
                }
            } else if !acc.is_write || uniform_writes {
                // Cold/evicted load (or allocating store): insert at MRU,
                // evicting the set's LRU entry if the widest cache is
                // full. A no-allocate store that misses the whole class
                // touches nothing — exact.
                let n = class.occ[set] as usize;
                if n < class.a_max {
                    class.occ[set] += 1;
                }
                let end = (n + 1).min(class.a_max);
                class.lines[base..base + end].rotate_right(1);
                class.lines[base] = acc.line;
            }
        }
    }

    let dirty: Vec<usize> = views
        .iter()
        .enumerate()
        .filter(|(_, v)| classes[v.class].dirty)
        .map(|(i, _)| i)
        .collect();
    (counts, dirty)
}

/// Exact per-configuration replay through [`Cache`] — the fallback for
/// divergent no-allocate stores, and the reference the single pass is
/// tested against.
pub fn replay_per_config(
    configs: &[CacheConfig],
    stream: &[LineAccess],
    mode: WriteMode,
) -> Vec<GeomCounts> {
    configs
        .iter()
        .map(|cfg| {
            let mut cache = Cache::new(*cfg);
            for acc in stream {
                match (acc.is_write, mode) {
                    (true, WriteMode::NoAllocate) => {
                        cache.access_no_allocate(acc.line, true);
                    }
                    (is_write, _) => {
                        cache.access(acc.line, is_write);
                    }
                }
            }
            let s = cache.stats();
            GeomCounts {
                accesses: s.accesses,
                hits: s.hits,
                misses: s.misses,
                reads: s.reads,
                writes: s.writes,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru(size: u64, assoc: u32, line: u64) -> CacheConfig {
        CacheConfig::new(size, assoc, line, ReplacementPolicy::Lru).expect("valid config")
    }

    /// A small deterministic mixed-locality stream.
    fn synth_stream(len: usize, span: u64, write_every: usize) -> Vec<LineAccess> {
        let mut state = 0x9e3779b97f4a7c15u64;
        (0..len)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Mix strided and random reuse.
                let line = if i % 3 == 0 {
                    (i as u64 / 3) % span
                } else {
                    state % span
                };
                LineAccess {
                    line,
                    is_write: write_every > 0 && i % write_every == 0,
                }
            })
            .collect()
    }

    #[test]
    fn validation_rejects_bad_groups() {
        assert_eq!(
            evaluate_lru_multi(&[], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::NoConfigs
        );
        let a = lru(1024, 2, 64);
        let b = lru(1024, 2, 128);
        assert!(matches!(
            evaluate_lru_multi(&[a, b], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::MixedLineSizes { .. }
        ));
        let fifo = CacheConfig::new(1024, 2, 64, ReplacementPolicy::Fifo).unwrap();
        assert!(matches!(
            evaluate_lru_multi(&[a, fifo], &[], WriteMode::Allocate).unwrap_err(),
            StackDistError::NotLru { index: 1 }
        ));
    }

    #[test]
    fn read_only_matches_replay_across_grid() {
        let configs = [
            lru(512, 1, 64), // direct-mapped
            lru(512, 8, 64), // fully associative (1 set)
            lru(1024, 2, 64),
            lru(4096, 4, 64),
            lru(8192, 16, 64),
        ];
        let stream = synth_stream(4000, 300, 0);
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        assert!(!result.fell_back);
        let reference = replay_per_config(&configs, &stream, WriteMode::Allocate);
        assert_eq!(result.counts, reference);
    }

    #[test]
    fn allocate_mode_with_writes_is_single_pass_and_exact() {
        let configs = [lru(512, 2, 64), lru(2048, 4, 64), lru(8192, 8, 64)];
        let stream = synth_stream(4000, 250, 3);
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        assert!(!result.fell_back, "write-allocate must never diverge");
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::Allocate)
        );
    }

    #[test]
    fn no_allocate_writes_stay_exact_even_when_divergent() {
        let configs = [lru(256, 1, 64), lru(512, 2, 64), lru(4096, 4, 64)];
        let stream = synth_stream(4000, 200, 4);
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
    }

    #[test]
    fn divergent_store_triggers_fallback() {
        // Two single-set geometries with 1 and 2 ways. Load a then b:
        // stack is [b, a]. A store to `a` hits the 2-way cache but misses
        // the 1-way one — divergent by construction.
        let configs = [lru(64, 1, 64), lru(128, 2, 64)];
        let stream = vec![
            LineAccess::new(0, false),
            LineAccess::new(1, false),
            LineAccess::new(0, true),
        ];
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert!(result.fell_back);
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
    }

    #[test]
    fn saturated_walk_still_restacks_loads() {
        // 1-set 1-way cache: a load to a deep line saturates instantly,
        // but the load must still move the line to MRU.
        let configs = [lru(64, 1, 64)];
        let stream = vec![
            LineAccess::new(0, false),
            LineAccess::new(1, false),
            LineAccess::new(0, false), // deep hit walk, saturates, restacks
            LineAccess::new(0, false), // must now be a hit
        ];
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::NoAllocate).unwrap();
        assert_eq!(
            result.counts,
            replay_per_config(&configs, &stream, WriteMode::NoAllocate)
        );
        assert_eq!(result.counts[0].hits, 1);
    }

    #[test]
    fn counts_track_reads_and_writes() {
        let configs = [lru(1024, 4, 64)];
        let stream = synth_stream(1000, 100, 5);
        let expected_writes = stream.iter().filter(|a| a.is_write).count() as u64;
        let result = evaluate_lru_multi(&configs, &stream, WriteMode::Allocate).unwrap();
        let c = &result.counts[0];
        assert_eq!(c.accesses, 1000);
        assert_eq!(c.writes, expected_writes);
        assert_eq!(c.reads, 1000 - expected_writes);
        assert_eq!(c.hits + c.misses, c.accesses);
        assert!(c.miss_rate() > 0.0 && c.miss_rate() <= 1.0);
    }
}
