//! Multi-core, multi-level cache hierarchy simulator for G-MAP.
//!
//! The paper evaluates proxies on "a validated SIMT-aware multi-core,
//! multi-level cache and memory simulator ... based on CMP$im" (§5). This
//! crate is the from-scratch equivalent:
//!
//! - [`cache`] — set-associative caches with LRU / FIFO / pseudo-LRU /
//!   random replacement and explicit prefetch-bit bookkeeping.
//! - [`mshr`] — miss status holding registers: secondary misses to an
//!   in-flight line merge instead of re-fetching (Table 2: 64 MSHRs/core).
//! - [`prefetch`] — a per-PC stride prefetcher for the L1 (after the
//!   many-thread-aware design of Lee et al. the paper evaluates in Fig. 6c)
//!   and a stream prefetcher for the L2 (Fig. 6d: window 8/16/32, degree
//!   1/2/4/8).
//! - [`hierarchy`] — per-SM private L1s over a shared banked L2 over a flat
//!   memory latency, implementing [`gmap_gpu::schedule::MemoryModel`] so the
//!   warp scheduler can drive it directly. Optionally records the
//!   timestamped memory-request stream that feeds the DRAM simulator
//!   (see [`hierarchy::TraceCapture`]).
//! - [`stackdist`] — Mattson stack-distance evaluation: exact LRU
//!   hit/miss counts for an entire grid of (size, associativity)
//!   geometries sharing a line size, from one pass over the access
//!   stream. This is what makes the design-space sweeps in `gmap-bench`
//!   O(line sizes) instead of O(configs).
//!
//! # Example
//!
//! ```
//! use gmap_memsim::cache::{Cache, CacheConfig, ReplacementPolicy};
//!
//! let cfg = CacheConfig::new(16 * 1024, 4, 128, ReplacementPolicy::Lru)?;
//! let mut l1 = Cache::new(cfg);
//! assert!(!l1.access(0x1000 / 128, false).is_hit()); // cold miss
//! assert!(l1.access(0x1000 / 128, false).is_hit());  // now resident
//! # Ok::<(), gmap_memsim::cache::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod hierarchy;
pub mod mshr;
pub mod prefetch;
pub mod stackdist;

pub use cache::{Cache, CacheConfig, CacheStats, ConfigError, ReplacementPolicy};
pub use hierarchy::{GpuHierarchy, HierarchyConfig, HierarchyStats, MemRequest, TraceCapture};
pub use mshr::Mshr;
pub use prefetch::{
    StreamPrefetcher, StreamPrefetcherConfig, StridePrefetcher, StridePrefetcherConfig,
};
pub use stackdist::{
    evaluate_lru_multi, GeomCounts, LineAccess, MultiEvalResult, StackDistError, WriteMode,
};
