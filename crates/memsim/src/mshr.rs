//! Miss status holding registers.
//!
//! GPUs hide latency by keeping many misses in flight; the MSHR file bounds
//! that concurrency per core (Table 2: 64 MSHRs per SM). A *secondary* miss
//! to a line that is already being fetched merges into the existing entry
//! and waits only for the remaining latency; a miss arriving when the file
//! is full pays a stall penalty, modeling allocation back-pressure.

use std::collections::BTreeMap;

/// Outcome of presenting a miss to the MSHR file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated; the caller pays the full miss latency.
    Allocated,
    /// The line was already in flight; the caller waits for the remaining
    /// cycles only.
    Merged {
        /// Cycles until the in-flight fill completes.
        remaining: u64,
    },
    /// The file was full; the caller pays `stall` extra cycles (time until
    /// the earliest entry retires) plus the full miss latency.
    Full {
        /// Cycles until a register frees up.
        stall: u64,
    },
}

/// A per-core MSHR file.
#[derive(Debug, Clone)]
pub struct Mshr {
    capacity: usize,
    /// line -> completion cycle. Ordered so that completion-time ties in
    /// [`RemoveEarliest`] resolve identically on every thread — HashMap's
    /// per-instance hash seeds would make simulation results depend on
    /// which thread runs them.
    entries: BTreeMap<u64, u64>,
    /// Merged (secondary) misses observed.
    merges: u64,
    /// Misses that found the file full.
    full_stalls: u64,
}

impl Mshr {
    /// Creates a file with the given number of registers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "MSHR capacity must be positive");
        Mshr {
            capacity,
            entries: BTreeMap::new(),
            merges: 0,
            full_stalls: 0,
        }
    }

    /// Presents a miss for `line` at `cycle`; `completion` is the cycle the
    /// fill would finish if a new entry is allocated. Retired entries are
    /// reclaimed lazily.
    pub fn on_miss(&mut self, line: u64, cycle: u64, completion: u64) -> MshrOutcome {
        // Reclaim finished fills.
        self.entries.retain(|_, &mut done| done > cycle);
        if let Some(&done) = self.entries.get(&line) {
            self.merges += 1;
            return MshrOutcome::Merged {
                remaining: done.saturating_sub(cycle),
            };
        }
        if self.entries.len() >= self.capacity {
            self.full_stalls += 1;
            let earliest = self
                .entries
                .values()
                .copied()
                .min()
                .expect("file is non-empty");
            let stall = earliest.saturating_sub(cycle);
            // The stalled miss allocates once the earliest entry retires.
            self.entries.remove_earliest(earliest);
            self.entries.insert(line, completion + stall);
            return MshrOutcome::Full { stall };
        }
        self.entries.insert(line, completion);
        MshrOutcome::Allocated
    }

    /// If `line` has a fill in flight at `cycle`, returns the remaining
    /// cycles until it completes. Used for hit-under-miss accounting: a
    /// tag hit on a line whose data is still being fetched must wait for
    /// the fill, not the L1 hit latency.
    pub fn pending_remaining(&mut self, line: u64, cycle: u64) -> Option<u64> {
        match self.entries.get(&line) {
            Some(&done) if done > cycle => {
                self.merges += 1;
                Some(done - cycle)
            }
            _ => None,
        }
    }

    /// Updates the completion time of an in-flight entry once the real
    /// fill latency is known (the hierarchy allocates with a provisional
    /// completion, then consults the lower levels).
    pub fn set_completion(&mut self, line: u64, completion: u64) {
        if let Some(done) = self.entries.get_mut(&line) {
            *done = completion;
        }
    }

    /// Entries currently in flight at `cycle`.
    pub fn in_flight(&self, cycle: u64) -> usize {
        self.entries.values().filter(|&&done| done > cycle).count()
    }

    /// Secondary misses merged so far.
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Misses that found the file full.
    pub fn full_stalls(&self) -> u64 {
        self.full_stalls
    }
}

/// Small extension to drop one entry with a given completion time.
trait RemoveEarliest {
    fn remove_earliest(&mut self, completion: u64);
}

impl RemoveEarliest for BTreeMap<u64, u64> {
    fn remove_earliest(&mut self, completion: u64) {
        if let Some(key) = self.iter().find(|(_, &v)| v == completion).map(|(&k, _)| k) {
            self.remove(&key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge() {
        let mut m = Mshr::new(4);
        assert_eq!(m.on_miss(10, 0, 100), MshrOutcome::Allocated);
        assert_eq!(
            m.on_miss(10, 40, 140),
            MshrOutcome::Merged { remaining: 60 }
        );
        assert_eq!(m.merges(), 1);
    }

    #[test]
    fn entries_retire() {
        let mut m = Mshr::new(2);
        m.on_miss(1, 0, 50);
        assert_eq!(m.in_flight(0), 1);
        assert_eq!(m.in_flight(50), 0);
        // After retirement the same line allocates anew.
        assert_eq!(m.on_miss(1, 60, 160), MshrOutcome::Allocated);
    }

    #[test]
    fn full_file_stalls() {
        let mut m = Mshr::new(2);
        m.on_miss(1, 0, 100);
        m.on_miss(2, 0, 80);
        match m.on_miss(3, 10, 110) {
            MshrOutcome::Full { stall } => assert_eq!(stall, 70), // entry 2 retires at 80
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(m.full_stalls(), 1);
    }

    #[test]
    fn merge_remaining_saturates() {
        let mut m = Mshr::new(2);
        m.on_miss(5, 0, 30);
        // Merge exactly at completion boundary: remaining clamps at 0...
        // (the retain above removes it at cycle >= 30, so this allocates).
        assert_eq!(m.on_miss(5, 30, 60), MshrOutcome::Allocated);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        Mshr::new(0);
    }

    #[test]
    fn completion_ties_resolve_deterministically() {
        // Two entries retire at the same cycle; the full-file path must
        // evict the same one on every run (lowest line address), keeping
        // simulations bit-reproducible across threads.
        let runs: Vec<Vec<u64>> = (0..2)
            .map(|_| {
                let mut m = Mshr::new(2);
                m.on_miss(7, 0, 100);
                m.on_miss(3, 0, 100);
                m.on_miss(9, 10, 110);
                let mut pending: Vec<u64> = Vec::new();
                for line in [3u64, 7, 9] {
                    if m.pending_remaining(line, 20).is_some() {
                        pending.push(line);
                    }
                }
                pending
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], vec![7, 9], "line 3 (lowest) was evicted");
    }
}
