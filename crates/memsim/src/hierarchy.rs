//! The multi-core GPU memory hierarchy: per-SM L1s, shared banked L2,
//! flat memory.
//!
//! Implements [`MemoryModel`], so [`gmap_gpu::schedule::run_schedule`] can
//! drive it directly: every coalesced transaction flows L1 → (MSHR) → L2
//! bank → memory, accumulating the latency that delays the issuing warp.
//!
//! Policies follow the Fermi-class baseline of Table 2 of the paper:
//!
//! - L1: write-through, no-allocate on write (Fermi's L1 does not cache
//!   stores), allocate on read miss, 64 MSHRs per core.
//! - L2: write-back, write-allocate, banked by line index.
//! - Memory: a flat latency; the timestamped request stream can be
//!   recorded and replayed through the `gmap-dram` simulator for the
//!   DRAM experiments (Fig. 7).

use crate::cache::{AccessRequest, Cache, CacheConfig, CacheStats, ConfigError, ReplacementPolicy};
use crate::mshr::{Mshr, MshrOutcome};
use crate::prefetch::{
    StreamPrefetcher, StreamPrefetcherConfig, StridePrefetcher, StridePrefetcherConfig,
};
use gmap_gpu::schedule::MemoryModel;
use gmap_trace::record::{AccessKind, ByteAddr, CoreId, Pc};
use serde::{Deserialize, Serialize};

/// A request that left the L2 toward memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemRequest {
    /// Cycle the request left the L2.
    pub cycle: u64,
    /// L2-line-aligned byte address.
    pub addr: ByteAddr,
    /// Read (fill) or write (write-back / write-through traffic).
    pub kind: AccessKind,
}

/// Whether the hierarchy materializes the timestamped memory-request
/// stream that leaves the L2.
///
/// Miss-rate sweeps only read counters, so recording (and growing) a
/// `Vec<MemRequest>` per simulation is pure overhead — [`TraceCapture::Off`]
/// elides it entirely. The DRAM experiments (Fig. 7) replay the stream
/// through `gmap-dram` and need [`TraceCapture::Full`]. Statistics are
/// identical either way; only the trace buffer differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TraceCapture {
    /// Record every request that leaves the L2 (needed for DRAM replay).
    Full,
    /// Record nothing; [`GpuHierarchy::mem_trace`] stays empty.
    #[default]
    Off,
}

impl TraceCapture {
    /// `true` for [`TraceCapture::Full`].
    pub fn is_full(self) -> bool {
        matches!(self, TraceCapture::Full)
    }
}

/// L1 write handling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum L1WritePolicy {
    /// Fermi-style: stores write through to the L2 and do not allocate in
    /// the L1 (the Table 2 baseline).
    #[default]
    WriteThroughNoAllocate,
    /// Write-back with write-allocate: stores fill and dirty the L1;
    /// dirty victims write back into the L2.
    WriteBackAllocate,
}

/// Full hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of cores (each with a private L1).
    pub num_cores: u16,
    /// Per-core L1 configuration.
    pub l1: CacheConfig,
    /// Total L2 configuration (capacity is split across banks).
    pub l2: CacheConfig,
    /// Number of L2 banks.
    pub l2_banks: u32,
    /// MSHRs per core.
    pub mshrs_per_core: u32,
    /// L1 hit latency in cycles.
    pub l1_hit_latency: u64,
    /// Additional latency of an L2 hit.
    pub l2_hit_latency: u64,
    /// Additional latency of a memory access.
    pub mem_latency: u64,
    /// Latency charged to the warp for a store (stores are
    /// fire-and-forget on GPUs).
    pub store_latency: u64,
    /// How the L1 handles stores.
    pub l1_write_policy: L1WritePolicy,
    /// Optional per-PC stride prefetcher at each L1.
    pub l1_prefetch: Option<StridePrefetcherConfig>,
    /// Optional stream prefetcher at the L2.
    pub l2_prefetch: Option<StreamPrefetcherConfig>,
    /// Whether to record the memory request stream (needed for DRAM
    /// replay; elided for miss-rate sweeps).
    pub trace_capture: TraceCapture,
}

impl HierarchyConfig {
    /// The Table 2 baseline: 15 cores, 16 KB 4-way 128 B L1s (1-cycle
    /// hits), 1 MB 8-way 8-bank 128 B L2, 64 MSHRs/core, no prefetchers.
    pub fn fermi_baseline() -> Self {
        HierarchyConfig {
            num_cores: 15,
            l1: CacheConfig::new(16 * 1024, 4, 128, ReplacementPolicy::Lru)
                .expect("baseline L1 is valid"),
            l2: CacheConfig::new(1024 * 1024, 8, 128, ReplacementPolicy::Lru)
                .expect("baseline L2 is valid"),
            l2_banks: 8,
            mshrs_per_core: 64,
            l1_hit_latency: 1,
            l2_hit_latency: 30,
            mem_latency: 200,
            store_latency: 4,
            l1_write_policy: L1WritePolicy::WriteThroughNoAllocate,
            l1_prefetch: None,
            l2_prefetch: None,
            trace_capture: TraceCapture::Off,
        }
    }

    /// Per-bank L2 configuration.
    ///
    /// # Errors
    ///
    /// Returns the underlying [`ConfigError`] if the capacity does not
    /// split evenly across banks.
    pub fn l2_bank_config(&self) -> Result<CacheConfig, ConfigError> {
        CacheConfig::new(
            self.l2.size_bytes / self.l2_banks as u64,
            self.l2.assoc,
            self.l2.line_size,
            self.l2.policy,
        )
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::fermi_baseline()
    }
}

/// Aggregated counters of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// All L1s merged.
    pub l1: CacheStats,
    /// All L2 banks merged.
    pub l2: CacheStats,
    /// Read requests sent to memory.
    pub mem_reads: u64,
    /// Write requests sent to memory.
    pub mem_writes: u64,
    /// L1 prefetch candidates issued.
    pub l1_pf_issued: u64,
    /// L2 prefetch candidates issued.
    pub l2_pf_issued: u64,
    /// Secondary misses merged in MSHRs.
    pub mshr_merges: u64,
    /// Misses stalled on a full MSHR file.
    pub mshr_full_stalls: u64,
}

impl HierarchyStats {
    /// L1 demand miss rate in `[0, 1]`.
    pub fn l1_miss_rate(&self) -> f64 {
        self.l1.miss_rate()
    }

    /// L2 demand miss rate in `[0, 1]`.
    pub fn l2_miss_rate(&self) -> f64 {
        self.l2.miss_rate()
    }
}

/// The simulated hierarchy.
#[derive(Debug)]
pub struct GpuHierarchy {
    cfg: HierarchyConfig,
    l1s: Vec<Cache>,
    mshrs: Vec<Mshr>,
    l2: Vec<Cache>,
    l1_pf: Vec<Option<StridePrefetcher>>,
    l2_pf: Option<StreamPrefetcher>,
    mem_trace: Vec<MemRequest>,
    mem_reads: u64,
    mem_writes: u64,
}

impl GpuHierarchy {
    /// Builds an empty hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the L2 does not split evenly into banks
    /// or either cache geometry is invalid.
    pub fn new(cfg: HierarchyConfig) -> Result<Self, ConfigError> {
        let bank_cfg = cfg.l2_bank_config()?;
        let l1s = (0..cfg.num_cores).map(|_| Cache::new(cfg.l1)).collect();
        let mshrs = (0..cfg.num_cores)
            .map(|_| Mshr::new(cfg.mshrs_per_core.max(1) as usize))
            .collect();
        let l2 = (0..cfg.l2_banks).map(|_| Cache::new(bank_cfg)).collect();
        let l1_pf = (0..cfg.num_cores)
            .map(|_| cfg.l1_prefetch.map(StridePrefetcher::new))
            .collect();
        let l2_pf = cfg.l2_prefetch.map(StreamPrefetcher::new);
        Ok(GpuHierarchy {
            cfg,
            l1s,
            mshrs,
            l2,
            l1_pf,
            l2_pf,
            mem_trace: Vec::new(),
            mem_reads: 0,
            mem_writes: 0,
        })
    }

    /// The configuration in effect.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Aggregated statistics.
    pub fn stats(&self) -> HierarchyStats {
        let mut l1 = CacheStats::default();
        for c in &self.l1s {
            l1.merge(c.stats());
        }
        let mut l2 = CacheStats::default();
        for c in &self.l2 {
            l2.merge(c.stats());
        }
        HierarchyStats {
            l1,
            l2,
            mem_reads: self.mem_reads,
            mem_writes: self.mem_writes,
            l1_pf_issued: self
                .l1_pf
                .iter()
                .flatten()
                .map(StridePrefetcher::issued)
                .sum(),
            l2_pf_issued: self.l2_pf.as_ref().map_or(0, StreamPrefetcher::issued),
            mshr_merges: self.mshrs.iter().map(Mshr::merges).sum(),
            mshr_full_stalls: self.mshrs.iter().map(Mshr::full_stalls).sum(),
        }
    }

    /// The recorded memory request stream (empty unless
    /// [`HierarchyConfig::trace_capture`] is [`TraceCapture::Full`]).
    pub fn mem_trace(&self) -> &[MemRequest] {
        &self.mem_trace
    }

    /// Consumes the hierarchy and returns the recorded request stream.
    pub fn into_mem_trace(self) -> Vec<MemRequest> {
        self.mem_trace
    }

    /// Shifts the cycle stamps of trace entries from index `from` onward
    /// by `offset` cycles. Used when several kernels are simulated back to
    /// back on one hierarchy: each schedule run counts cycles from zero,
    /// so later kernels' requests must be moved past their predecessors'.
    pub fn shift_mem_trace_cycles(&mut self, from: usize, offset: u64) {
        for req in self.mem_trace.iter_mut().skip(from) {
            req.cycle += offset;
        }
    }

    /// Number of memory requests recorded so far.
    pub fn mem_trace_len(&self) -> usize {
        self.mem_trace.len()
    }

    #[inline]
    fn l1_line(&self, addr: ByteAddr) -> u64 {
        addr.0 >> self.cfg.l1.line_size.trailing_zeros()
    }

    #[inline]
    fn l2_line(&self, addr: ByteAddr) -> u64 {
        addr.0 >> self.cfg.l2.line_size.trailing_zeros()
    }

    #[inline]
    fn bank_of(&self, l2_line: u64) -> usize {
        (l2_line % self.cfg.l2_banks as u64) as usize
    }

    fn send_mem(&mut self, l2_line: u64, kind: AccessKind, cycle: u64) {
        match kind {
            AccessKind::Read => self.mem_reads += 1,
            AccessKind::Write => self.mem_writes += 1,
        }
        if self.cfg.trace_capture.is_full() {
            let addr = ByteAddr(l2_line << self.cfg.l2.line_size.trailing_zeros());
            self.mem_trace.push(MemRequest { cycle, addr, kind });
        }
    }

    /// L2 demand lookup: returns the latency beyond the L1 portion and
    /// performs all fills, write-backs and L2 prefetching.
    fn l2_demand(&mut self, addr: ByteAddr, is_write: bool, cycle: u64) -> u64 {
        let l2_line = self.l2_line(addr);
        let bank = self.bank_of(l2_line);
        let out = self.l2[bank].request(AccessRequest {
            line: l2_line,
            is_write,
            allocate_on_miss: true,
            mark_dirty: is_write,
        });
        if let Some(victim) = out.writeback {
            self.send_mem(victim, AccessKind::Write, cycle);
        }
        if out.hit {
            self.cfg.l2_hit_latency
        } else {
            self.send_mem(l2_line, AccessKind::Read, cycle);
            // Stream prefetcher trains on demand misses.
            let candidates = self
                .l2_pf
                .as_mut()
                .map(|pf| pf.observe(l2_line))
                .unwrap_or_default();
            for cand in candidates {
                let b = self.bank_of(cand);
                if !self.l2[b].probe(cand) {
                    self.send_mem(cand, AccessKind::Read, cycle);
                    if let Some(victim) = self.l2[b].prefetch_fill(cand) {
                        self.send_mem(victim, AccessKind::Write, cycle);
                    }
                }
            }
            self.cfg.l2_hit_latency + self.cfg.mem_latency
        }
    }

    /// Runs the L1 stride prefetcher for a demand access and installs the
    /// candidates into L1 (fetching through L2 as needed, off the critical
    /// path).
    fn l1_prefetch(&mut self, core: usize, pc: Pc, l1_line: u64, cycle: u64) {
        let Some(pf) = self.l1_pf[core].as_mut() else {
            return;
        };
        let candidates = pf.observe(pc.0, l1_line);
        for cand in candidates {
            if self.l1s[core].probe(cand) {
                continue;
            }
            let addr = ByteAddr(cand << self.cfg.l1.line_size.trailing_zeros());
            let l2_line = self.l2_line(addr);
            let bank = self.bank_of(l2_line);
            if !self.l2[bank].probe(l2_line) {
                self.send_mem(l2_line, AccessKind::Read, cycle);
                if let Some(victim) = self.l2[bank].prefetch_fill(l2_line) {
                    self.send_mem(victim, AccessKind::Write, cycle);
                }
            }
            // Under a write-back policy a prefetch fill can evict a dirty
            // victim, which must reach the L2.
            if let Some(victim) = self.l1s[core].prefetch_fill(cand) {
                let victim_addr = ByteAddr(victim << self.cfg.l1.line_size.trailing_zeros());
                let _ = self.l2_demand(victim_addr, true, cycle);
            }
        }
    }
}

impl MemoryModel for GpuHierarchy {
    fn access(
        &mut self,
        core: CoreId,
        pc: Pc,
        line: ByteAddr,
        kind: AccessKind,
        cycle: u64,
    ) -> u64 {
        let core = (core.0 as usize) % self.l1s.len();
        let l1_line = self.l1_line(line);
        match kind {
            AccessKind::Read => {
                let hit = self.l1s[core]
                    .request(AccessRequest {
                        line: l1_line,
                        is_write: false,
                        allocate_on_miss: false,
                        mark_dirty: false,
                    })
                    .hit;
                self.l1_prefetch(core, pc, l1_line, cycle);
                if hit {
                    // Hit-under-miss: the tag may be present while the fill
                    // is still in flight; the warp waits for the fill.
                    if let Some(remaining) = self.mshrs[core].pending_remaining(l1_line, cycle) {
                        return self.cfg.l1_hit_latency + remaining;
                    }
                    return self.cfg.l1_hit_latency;
                }
                // Miss: consult the MSHR file before going below. The fill
                // completion depends on L2/memory, which we must consult
                // exactly once per primary miss; allocate with a
                // provisional completion and refine it afterwards.
                let provisional = cycle + self.cfg.l1_hit_latency;
                let stall = match self.mshrs[core].on_miss(l1_line, cycle, provisional) {
                    MshrOutcome::Merged { remaining } => {
                        // Secondary miss: wait for the in-flight fill.
                        return self.cfg.l1_hit_latency + remaining;
                    }
                    MshrOutcome::Allocated => 0,
                    MshrOutcome::Full { stall } => stall,
                };
                // Primary miss (possibly delayed by MSHR back-pressure):
                // fetch through L2 and fill the L1.
                let below = self.l2_demand(line, false, cycle);
                let total = self.cfg.l1_hit_latency + stall + below;
                // Record the true completion time for later mergers.
                self.mshrs[core].set_completion(l1_line, cycle + total);
                // Fill L1; under a write-back policy the evicted victim
                // may be dirty and must reach the L2.
                if let Some(victim) = self.l1s[core].demand_fill(l1_line) {
                    let addr = ByteAddr(victim << self.cfg.l1.line_size.trailing_zeros());
                    let _ = self.l2_demand(addr, true, cycle);
                }
                total
            }
            AccessKind::Write => match self.cfg.l1_write_policy {
                L1WritePolicy::WriteThroughNoAllocate => {
                    // Update on hit, never fill; the write always goes to
                    // the L2 (write-back there).
                    let _ = self.l1s[core].request(AccessRequest {
                        line: l1_line,
                        is_write: true,
                        allocate_on_miss: false,
                        mark_dirty: false,
                    });
                    let _ = self.l2_demand(line, true, cycle);
                    self.cfg.store_latency
                }
                L1WritePolicy::WriteBackAllocate => {
                    // Fill and dirty the L1; dirty victims write into the
                    // L2 (which may itself write back to memory).
                    let out = self.l1s[core].request(AccessRequest {
                        line: l1_line,
                        is_write: true,
                        allocate_on_miss: true,
                        mark_dirty: true,
                    });
                    if let Some(victim) = out.writeback {
                        let addr = ByteAddr(victim << self.cfg.l1.line_size.trailing_zeros());
                        let _ = self.l2_demand(addr, true, cycle);
                    }
                    if !out.hit {
                        // Write-allocate fetch of the rest of the line.
                        let _ = self.l2_demand(line, false, cycle);
                    }
                    self.cfg.store_latency
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> HierarchyConfig {
        HierarchyConfig {
            num_cores: 2,
            l1: CacheConfig::new(1024, 2, 128, ReplacementPolicy::Lru).expect("valid"),
            l2: CacheConfig::new(8 * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid"),
            l2_banks: 2,
            mshrs_per_core: 4,
            l1_hit_latency: 1,
            l2_hit_latency: 10,
            mem_latency: 100,
            store_latency: 2,
            l1_write_policy: L1WritePolicy::WriteThroughNoAllocate,
            l1_prefetch: None,
            l2_prefetch: None,
            trace_capture: TraceCapture::Full,
        }
    }

    fn read(h: &mut GpuHierarchy, core: u16, addr: u64, cycle: u64) -> u64 {
        h.access(
            CoreId(core),
            Pc(0x10),
            ByteAddr(addr),
            AccessKind::Read,
            cycle,
        )
    }

    #[test]
    fn baseline_matches_table2() {
        let cfg = HierarchyConfig::fermi_baseline();
        assert_eq!(cfg.num_cores, 15);
        assert_eq!(cfg.l1.size_bytes, 16 * 1024);
        assert_eq!(cfg.l1.assoc, 4);
        assert_eq!(cfg.l2.size_bytes, 1024 * 1024);
        assert_eq!(cfg.l2_banks, 8);
        assert_eq!(cfg.mshrs_per_core, 64);
        assert!(GpuHierarchy::new(cfg).is_ok());
    }

    #[test]
    fn read_latencies_reflect_hit_level() {
        let mut h = GpuHierarchy::new(tiny_config()).expect("valid");
        let cold = read(&mut h, 0, 0x10000, 0);
        assert_eq!(cold, 1 + 10 + 100);
        let l1_hit = read(&mut h, 0, 0x10000, 200);
        assert_eq!(l1_hit, 1);
        // Another core misses L1 but hits L2.
        let l2_hit = read(&mut h, 1, 0x10000, 400);
        assert_eq!(l2_hit, 1 + 10);
    }

    #[test]
    fn stats_count_levels_correctly() {
        let mut h = GpuHierarchy::new(tiny_config()).expect("valid");
        read(&mut h, 0, 0, 0);
        read(&mut h, 0, 0, 300);
        let s = h.stats();
        assert_eq!(s.l1.accesses, 2);
        assert_eq!(s.l1.hits, 1);
        assert_eq!(s.l2.accesses, 1);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.mem_reads, 1);
        assert!((s.l1_miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mshr_merges_secondary_misses() {
        let mut h = GpuHierarchy::new(tiny_config()).expect("valid");
        let primary = read(&mut h, 0, 0x40000, 0);
        assert_eq!(primary, 111); // fill completes at cycle 111
                                  // A second access while the fill is in flight waits for it
                                  // (hit-under-miss) and does not re-query the L2 or memory.
        let mem_before = h.stats().mem_reads;
        let secondary = read(&mut h, 0, 0x40000, 5);
        assert_eq!(secondary, 1 + (111 - 5));
        assert_eq!(h.stats().mem_reads, mem_before);
        assert_eq!(h.stats().mshr_merges, 1);
        // After the fill lands it is a plain L1 hit.
        let hit = read(&mut h, 0, 0x40000, 200);
        assert_eq!(hit, 1);
    }

    #[test]
    fn writes_are_write_through_no_allocate() {
        let mut h = GpuHierarchy::new(tiny_config()).expect("valid");
        let lat = h.access(CoreId(0), Pc(0x20), ByteAddr(0x8000), AccessKind::Write, 0);
        assert_eq!(lat, 2); // store latency
        let s = h.stats();
        // L1 did not allocate; L2 did (write-allocate).
        assert_eq!(s.l1.misses, 1);
        assert_eq!(s.l2.accesses, 1);
        assert_eq!(s.mem_reads, 1); // write-allocate fetch
                                    // A read to the same line now hits L2 (not L1).
        let lat = read(&mut h, 0, 0x8000, 100);
        assert_eq!(lat, 11);
    }

    #[test]
    fn write_back_l1_allocates_stores() {
        let mut cfg = tiny_config();
        cfg.l1_write_policy = L1WritePolicy::WriteBackAllocate;
        let mut h = GpuHierarchy::new(cfg).expect("valid");
        h.access(CoreId(0), Pc(0x20), ByteAddr(0x8000), AccessKind::Write, 0);
        // Unlike the write-through default, the store filled the L1.
        let lat = read(&mut h, 0, 0x8000, 100);
        assert_eq!(lat, 1, "read after store should hit a write-back L1");
    }

    #[test]
    fn write_back_l1_dirty_victims_reach_l2() {
        let mut cfg = tiny_config();
        cfg.l1_write_policy = L1WritePolicy::WriteBackAllocate;
        // 1 KiB 2-way 128 B L1: 4 sets; conflict a set with 3 lines.
        let mut h = GpuHierarchy::new(cfg).expect("valid");
        h.access(CoreId(0), Pc(0x20), ByteAddr(0), AccessKind::Write, 0);
        // Two conflicting reads (same set: stride = sets*line = 512 B)
        // evict the dirty line.
        read(&mut h, 0, 512, 10);
        read(&mut h, 0, 1024, 20);
        let s = h.stats();
        assert!(s.l1.writebacks >= 1, "dirty L1 victim should write back");
        // Under write-back the store itself never reaches the L2 — only
        // the dirty victim does (plus the write-allocate fetch as a read).
        assert_eq!(s.l2.writes, 1, "victim write at L2");
        assert!(
            s.l2.reads >= 3,
            "allocate fetch + demand reads, got {}",
            s.l2.reads
        );
    }

    #[test]
    fn dirty_l2_eviction_writes_back() {
        let mut cfg = tiny_config();
        // Shrink L2 to force evictions quickly: 2 banks x 2 sets x 2 ways.
        cfg.l2 = CacheConfig::new(2048, 2, 128, ReplacementPolicy::Lru).expect("valid");
        let mut h = GpuHierarchy::new(cfg).expect("valid");
        // Dirty a line, then stream enough conflicting lines through the
        // same bank to evict it.
        h.access(CoreId(0), Pc(0x20), ByteAddr(0), AccessKind::Write, 0);
        for i in 1..20u64 {
            // Same bank requires same (line % banks) parity: step by 2 lines.
            read(&mut h, 0, i * 2 * 128, i * 10);
        }
        let s = h.stats();
        assert!(
            s.mem_writes >= 1,
            "expected at least one write-back, got {}",
            s.mem_writes
        );
    }

    #[test]
    fn l2_banking_splits_capacity() {
        let cfg = tiny_config();
        let bank = cfg.l2_bank_config().expect("valid");
        assert_eq!(bank.size_bytes, 4 * 1024);
        // Lines alternate banks.
        let mut h = GpuHierarchy::new(cfg).expect("valid");
        read(&mut h, 0, 0, 0); // line 0 -> bank 0
        read(&mut h, 0, 128, 0); // line 1 -> bank 1
        assert_eq!(h.l2[0].stats().accesses, 1);
        assert_eq!(h.l2[1].stats().accesses, 1);
    }

    #[test]
    fn mem_trace_is_recorded_with_cycles() {
        let mut h = GpuHierarchy::new(tiny_config()).expect("valid");
        read(&mut h, 0, 0x1000, 7);
        read(&mut h, 0, 0x2000, 19);
        let t = h.mem_trace();
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].cycle, 7);
        assert_eq!(t[1].cycle, 19);
        assert_eq!(t[0].kind, AccessKind::Read);
        assert_eq!(t[0].addr, ByteAddr(0x1000));
    }

    #[test]
    fn trace_off_matches_full_stats_with_empty_trace() {
        let full_cfg = tiny_config();
        let mut off_cfg = full_cfg;
        off_cfg.trace_capture = TraceCapture::Off;
        let mut full = GpuHierarchy::new(full_cfg).expect("valid");
        let mut off = GpuHierarchy::new(off_cfg).expect("valid");
        let mut state = 1u64;
        for i in 0..500u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (state >> 20) % 0x20000;
            let kind = if state % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let core = (state % 2) as u16;
            full.access(CoreId(core), Pc(0x10), ByteAddr(addr), kind, i * 3);
            off.access(CoreId(core), Pc(0x10), ByteAddr(addr), kind, i * 3);
        }
        assert_eq!(
            full.stats(),
            off.stats(),
            "capture mode must not affect stats"
        );
        assert!(!full.mem_trace().is_empty());
        assert!(off.mem_trace().is_empty(), "Off must record nothing");
    }

    #[test]
    fn l1_stride_prefetcher_reduces_misses_on_streams() {
        let mut base = tiny_config();
        base.l1 = CacheConfig::new(4 * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid");
        let mut with_pf = base;
        with_pf.l1_prefetch = Some(StridePrefetcherConfig {
            table_size: 16,
            degree: 4,
            distance: 1,
            min_confidence: 2,
        });
        let mut h0 = GpuHierarchy::new(base).expect("valid");
        let mut h1 = GpuHierarchy::new(with_pf).expect("valid");
        for i in 0..512u64 {
            let addr = i * 128; // unit-stride line stream from one PC
            h0.access(
                CoreId(0),
                Pc(0x10),
                ByteAddr(addr),
                AccessKind::Read,
                i * 10,
            );
            h1.access(
                CoreId(0),
                Pc(0x10),
                ByteAddr(addr),
                AccessKind::Read,
                i * 10,
            );
        }
        let (m0, m1) = (h0.stats().l1.misses, h1.stats().l1.misses);
        assert!(m1 < m0 / 2, "prefetcher should cut misses: {m1} vs {m0}");
        assert!(h1.stats().l1.prefetch_useful > 0);
    }

    #[test]
    fn l2_stream_prefetcher_reduces_l2_misses() {
        let mut base = tiny_config();
        let mut with_pf = base;
        with_pf.l2_prefetch = Some(StreamPrefetcherConfig {
            num_streams: 8,
            window: 16,
            degree: 4,
        });
        base.trace_capture = TraceCapture::Off;
        with_pf.trace_capture = TraceCapture::Off;
        let mut h0 = GpuHierarchy::new(base).expect("valid");
        let mut h1 = GpuHierarchy::new(with_pf).expect("valid");
        for i in 0..512u64 {
            let addr = i * 128;
            h0.access(
                CoreId(0),
                Pc(0x10),
                ByteAddr(addr),
                AccessKind::Read,
                i * 10,
            );
            h1.access(
                CoreId(0),
                Pc(0x10),
                ByteAddr(addr),
                AccessKind::Read,
                i * 10,
            );
        }
        assert!(
            h1.stats().l2.misses < h0.stats().l2.misses,
            "stream prefetcher should cut L2 misses: {} vs {}",
            h1.stats().l2.misses,
            h0.stats().l2.misses
        );
    }

    #[test]
    fn different_l1_and_l2_line_sizes_compose() {
        let mut cfg = tiny_config();
        cfg.l1 = CacheConfig::new(1024, 2, 32, ReplacementPolicy::Lru).expect("valid");
        cfg.l2 = CacheConfig::new(8 * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid");
        let mut h = GpuHierarchy::new(cfg).expect("valid");
        // Two reads 32 B apart: two L1 lines, one L2 line.
        read(&mut h, 0, 0x1000, 0);
        read(&mut h, 0, 0x1020, 10);
        let s = h.stats();
        assert_eq!(s.l1.misses, 2);
        assert_eq!(s.l2.misses, 1);
        assert_eq!(s.l2.hits, 1);
    }

    #[test]
    fn core_ids_wrap_safely() {
        let mut h = GpuHierarchy::new(tiny_config()).expect("valid");
        // Core id beyond num_cores must not panic (wraps by modulo).
        let lat = read(&mut h, 7, 0x100, 0);
        assert!(lat > 0);
    }
}
