//! Hardware prefetchers.
//!
//! Two designs, matching the paper's evaluation:
//!
//! - [`StridePrefetcher`] — a per-PC stride table for the L1 after the
//!   many-thread-aware GPU prefetcher of Lee et al. (MICRO 2010) that the
//!   paper evaluates in Figure 6c. GPU-specific detail: because thousands
//!   of threads interleave on one core, strides are detected *per static
//!   instruction*, not per linear address stream.
//! - [`StreamPrefetcher`] — a classic multi-stream sequential prefetcher
//!   for the L2 (Figure 6d), parameterized by stream window (8/16/32
//!   lines) and prefetch degree (1/2/4/8).
//!
//! Prefetchers emit candidate line indices; the hierarchy decides whether
//! they are already resident and fills them with the prefetch bit set so
//! usefulness can be measured.

use serde::{Deserialize, Serialize};

/// Configuration of the per-PC stride prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StridePrefetcherConfig {
    /// Number of PC-indexed table entries (power of two).
    pub table_size: u32,
    /// Lines fetched ahead per trigger.
    pub degree: u32,
    /// How many strides ahead the first prefetch lands.
    pub distance: u32,
    /// Consecutive identical strides required before issuing.
    pub min_confidence: u32,
}

impl Default for StridePrefetcherConfig {
    fn default() -> Self {
        StridePrefetcherConfig {
            table_size: 64,
            degree: 2,
            distance: 1,
            min_confidence: 2,
        }
    }
}

impl StridePrefetcherConfig {
    /// `true` iff [`StridePrefetcher::new`] accepts this config and the
    /// parameters fall inside the supported sweep envelope. Planners gate
    /// on this so construction never panics on user-supplied grids.
    pub fn is_supported(&self) -> bool {
        self.table_size.is_power_of_two()
            && self.table_size <= 4096
            && (1..=32).contains(&self.degree)
            && self.distance <= 64
    }

    /// Expands one confident `(line, stride)` observation into the
    /// candidate lines this config issues: `line + stride * (distance +
    /// k)` for `k in 0..degree`, dropping candidates that would fall
    /// below line zero. Appends to `out` without clearing it.
    ///
    /// This is the emission half of [`StridePrefetcher::observe_into`];
    /// it depends only on `degree` and `distance`, never on table state,
    /// so bulk replays can share one training pass across configs that
    /// differ only here.
    pub fn expand_into(&self, line: u64, stride: i64, out: &mut Vec<u64>) {
        out.reserve(self.degree as usize);
        for k in 0..self.degree {
            let steps = (self.distance + k) as i64;
            let target = line as i64 + stride * steps;
            if target >= 0 {
                out.push(target as u64);
            }
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    pc: u64,
    valid: bool,
    last_line: u64,
    stride: i64,
    confidence: u32,
}

/// Per-PC stride prefetcher state.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    cfg: StridePrefetcherConfig,
    table: Vec<StrideEntry>,
    issued: u64,
}

impl StridePrefetcher {
    /// Creates an empty prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `table_size` is not a power of two or `degree` is zero.
    pub fn new(cfg: StridePrefetcherConfig) -> Self {
        assert!(
            cfg.table_size.is_power_of_two(),
            "table size must be a power of two"
        );
        assert!(cfg.degree > 0, "degree must be positive");
        StridePrefetcher {
            cfg,
            table: vec![StrideEntry::default(); cfg.table_size as usize],
            issued: 0,
        }
    }

    /// Observes a demand access `(pc, line)` and returns the lines to
    /// prefetch (possibly empty).
    pub fn observe(&mut self, pc: u64, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(pc, line, &mut out);
        out
    }

    /// Allocation-free [`observe`](Self::observe): clears `out` and fills
    /// it with the candidate lines. Bulk replays (the sweep engine builds
    /// one candidate schedule per prefetcher config over multi-million
    /// access streams) reuse one buffer instead of allocating per access.
    pub fn observe_into(&mut self, pc: u64, line: u64, out: &mut Vec<u64>) {
        out.clear();
        if let Some((line, stride)) = self.observe_stride(pc, line) {
            self.cfg.expand_into(line, stride, out);
            self.issued += out.len() as u64;
        }
    }

    /// The training half of [`observe_into`](Self::observe_into): updates
    /// the per-PC table for one demand load and returns the `(line,
    /// stride)` pair candidate expansion starts from, if the entry has
    /// reached the confidence threshold. Training depends only on
    /// `table_size` and `min_confidence` — never on `degree` or
    /// `distance`, which only shape
    /// [`StridePrefetcherConfig::expand_into`] — so configs differing
    /// only in emission shape share one training trajectory.
    pub fn observe_stride(&mut self, pc: u64, line: u64) -> Option<(u64, i64)> {
        let idx = (pc as usize).wrapping_mul(0x9E37_79B9) % self.table.len();
        let e = &mut self.table[idx];
        if !e.valid || e.pc != pc {
            *e = StrideEntry {
                pc,
                valid: true,
                last_line: line,
                stride: 0,
                confidence: 0,
            };
            return None;
        }
        let delta = line as i64 - e.last_line as i64;
        e.last_line = line;
        if delta == 0 {
            return None;
        }
        if delta == e.stride {
            e.confidence = e.confidence.saturating_add(1);
        } else {
            e.stride = delta;
            e.confidence = 1;
        }
        if e.confidence < self.cfg.min_confidence {
            return None;
        }
        Some((line, e.stride))
    }

    /// Prefetch candidates issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// Configuration of the L2 stream prefetcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StreamPrefetcherConfig {
    /// Number of concurrently tracked streams.
    pub num_streams: u32,
    /// Window (in lines) within which an access extends a stream.
    pub window: u32,
    /// Lines fetched ahead per trigger.
    pub degree: u32,
}

impl Default for StreamPrefetcherConfig {
    fn default() -> Self {
        StreamPrefetcherConfig {
            num_streams: 16,
            window: 16,
            degree: 2,
        }
    }
}

impl StreamPrefetcherConfig {
    /// `true` iff [`StreamPrefetcher::new`] accepts this config and the
    /// parameters fall inside the supported sweep envelope.
    pub fn is_supported(&self) -> bool {
        (1..=256).contains(&self.num_streams)
            && (1..=1024).contains(&self.window)
            && (1..=32).contains(&self.degree)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    valid: bool,
    last_line: u64,
    direction: i64,
    lru: u64,
}

/// Multi-stream sequential prefetcher.
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    cfg: StreamPrefetcherConfig,
    streams: Vec<Stream>,
    clock: u64,
    issued: u64,
}

impl StreamPrefetcher {
    /// Creates an empty prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if `num_streams`, `window` or `degree` is zero.
    pub fn new(cfg: StreamPrefetcherConfig) -> Self {
        assert!(
            cfg.num_streams > 0 && cfg.window > 0 && cfg.degree > 0,
            "stream prefetcher parameters must be positive"
        );
        StreamPrefetcher {
            cfg,
            streams: vec![Stream::default(); cfg.num_streams as usize],
            clock: 0,
            issued: 0,
        }
    }

    /// Observes an L2 demand miss and returns lines to prefetch.
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        self.clock += 1;
        let window = self.cfg.window as i64;
        // Try to extend an existing stream.
        for s in &mut self.streams {
            if !s.valid {
                continue;
            }
            let delta = line as i64 - s.last_line as i64;
            if delta != 0
                && delta.abs() <= window
                && (s.direction == 0 || delta.signum() == s.direction)
            {
                s.direction = delta.signum();
                s.last_line = line;
                s.lru = self.clock;
                let mut out = Vec::with_capacity(self.cfg.degree as usize);
                for k in 1..=self.cfg.degree {
                    let target = line as i64 + s.direction * k as i64;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
                self.issued += out.len() as u64;
                return out;
            }
        }
        // Allocate a new stream (LRU replacement).
        let slot = self
            .streams
            .iter()
            .position(|s| !s.valid)
            .unwrap_or_else(|| {
                self.streams
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, s)| s.lru)
                    .map(|(i, _)| i)
                    .expect("at least one stream")
            });
        self.streams[slot] = Stream {
            valid: true,
            last_line: line,
            direction: 0,
            lru: self.clock,
        };
        Vec::new()
    }

    /// Prefetch candidates issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_detects_after_confidence() {
        let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 16,
            degree: 2,
            distance: 1,
            min_confidence: 2,
        });
        assert!(pf.observe(0x10, 100).is_empty()); // training
        assert!(pf.observe(0x10, 104).is_empty()); // stride 4, conf 1
        let p = pf.observe(0x10, 108); // conf 2 -> fire
        assert_eq!(p, vec![112, 116]);
        assert_eq!(pf.issued(), 2);
    }

    #[test]
    fn stride_distance_offsets_targets() {
        let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 16,
            degree: 1,
            distance: 4,
            min_confidence: 1,
        });
        pf.observe(0x10, 10);
        let p = pf.observe(0x10, 12); // stride 2, conf 1 -> fire at distance 4
        assert_eq!(p, vec![12 + 2 * 4]);
    }

    #[test]
    fn stride_negative_strides_work() {
        let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 16,
            degree: 1,
            distance: 1,
            min_confidence: 1,
        });
        pf.observe(0x20, 100);
        let p = pf.observe(0x20, 90);
        assert_eq!(p, vec![80]);
        // Never emit negative lines.
        pf.observe(0x20, 5);
        let p = pf.observe(0x20, 1);
        assert!(p.is_empty() || p.iter().all(|&l| l < 1));
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 16,
            degree: 1,
            distance: 1,
            min_confidence: 2,
        });
        pf.observe(0x10, 0);
        pf.observe(0x10, 4);
        assert!(!pf.observe(0x10, 8).is_empty() || true);
        assert!(pf.observe(0x10, 100).is_empty()); // stride broke
        assert!(pf.observe(0x10, 104).is_empty()); // conf 1 again
        assert!(!pf.observe(0x10, 108).is_empty()); // conf 2 -> fire
    }

    #[test]
    fn stride_pc_collision_replaces_entry() {
        let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 1, // everything collides
            degree: 1,
            distance: 1,
            min_confidence: 1,
        });
        pf.observe(0x10, 0);
        pf.observe(0x20, 50); // evicts 0x10's entry
        assert!(
            pf.observe(0x10, 4).is_empty(),
            "entry for 0x10 was replaced"
        );
    }

    #[test]
    fn zero_stride_never_fires() {
        let mut pf = StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 16,
            degree: 4,
            distance: 1,
            min_confidence: 1,
        });
        pf.observe(0x10, 7);
        for _ in 0..10 {
            assert!(pf.observe(0x10, 7).is_empty());
        }
    }

    #[test]
    fn stream_follows_ascending_misses() {
        let mut pf = StreamPrefetcher::new(StreamPrefetcherConfig {
            num_streams: 4,
            window: 8,
            degree: 2,
        });
        assert!(pf.observe(100).is_empty()); // allocates stream
        let p = pf.observe(101);
        assert_eq!(p, vec![102, 103]);
        let p = pf.observe(103);
        assert_eq!(p, vec![104, 105]);
    }

    #[test]
    fn stream_follows_descending_misses() {
        let mut pf = StreamPrefetcher::new(StreamPrefetcherConfig {
            num_streams: 4,
            window: 8,
            degree: 1,
        });
        pf.observe(100);
        assert_eq!(pf.observe(98), vec![97]);
        // Direction locked: an ascending jump within the window does not
        // extend this stream; it allocates a new one.
        assert!(pf.observe(99).is_empty());
    }

    #[test]
    fn stream_outside_window_allocates_new_stream() {
        let mut pf = StreamPrefetcher::new(StreamPrefetcherConfig {
            num_streams: 2,
            window: 4,
            degree: 1,
        });
        pf.observe(100);
        assert!(pf.observe(200).is_empty()); // too far: new stream
        assert_eq!(pf.observe(201), vec![202]); // second stream established
        assert_eq!(pf.observe(101), vec![102]); // first stream still alive
    }

    #[test]
    fn stream_lru_replacement() {
        let mut pf = StreamPrefetcher::new(StreamPrefetcherConfig {
            num_streams: 1,
            window: 4,
            degree: 1,
        });
        pf.observe(100);
        pf.observe(500); // replaces the only stream
        assert!(pf.observe(101).is_empty(), "old stream must be gone");
    }

    #[test]
    fn is_supported_matches_constructor_envelope() {
        assert!(StridePrefetcherConfig::default().is_supported());
        assert!(StreamPrefetcherConfig::default().is_supported());
        let bad_table = StridePrefetcherConfig {
            table_size: 3,
            ..Default::default()
        };
        assert!(!bad_table.is_supported());
        let oversized = StridePrefetcherConfig {
            table_size: 8192,
            ..Default::default()
        };
        assert!(!oversized.is_supported());
        let zero_degree = StridePrefetcherConfig {
            degree: 0,
            ..Default::default()
        };
        assert!(!zero_degree.is_supported());
        let zero_streams = StreamPrefetcherConfig {
            num_streams: 0,
            ..Default::default()
        };
        assert!(!zero_streams.is_supported());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn stride_rejects_bad_table() {
        StridePrefetcher::new(StridePrefetcherConfig {
            table_size: 3,
            degree: 1,
            distance: 1,
            min_confidence: 1,
        });
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stream_rejects_zero_degree() {
        StreamPrefetcher::new(StreamPrefetcherConfig {
            num_streams: 1,
            window: 1,
            degree: 0,
        });
    }
}
