//! Successor replication with hinted handoff for the sharded tier.
//!
//! Every model the cache is an accelerator for is content-addressed and
//! deterministically recomputable, so replication here is
//! divergence-free by construction: a replica copy is a pure cache of a
//! value the key fully determines, racing pushes converge
//! byte-identically, and anti-entropy reduces to key-set exchange.
//! That lets the whole layer be write-through and asynchronous:
//!
//! * On a cache **store** (a profile miss, an ingest, or a replicate
//!   receive that created a new entry) the server enqueues the key on a
//!   bounded queue ([`ReplicationState::enqueue`]). Overflow drops the
//!   work and counts it — correctness is untouched, only warm-failover
//!   locality is lost.
//! * The **replication worker** drains the queue: for each key it
//!   pushes the model to every member of the key's replica set (owner +
//!   RF−1 ring successors) except itself, over the internal
//!   `POST /v1/replicate` endpoint.
//! * A push toward a peer whose circuit breaker is open is recorded as
//!   a **hint** instead of attempted — Dynamo-style hinted handoff,
//!   specialized to immutable entries (a hint is just a key). Each
//!   worker tick replays hints whose target the health registry admits
//!   again, so a restarted owner receives everything it missed.
//! * Serving a cache **hit** for a key this replica does not own
//!   triggers **read-repair** ([`ReplicationState::read_repair`]): the
//!   key is re-enqueued once, pushing the model back toward its owner.
//!
//! The `replicate_err` fault kind drops a queued push deterministically
//! (counted as dropped, recorded as a hint), exercising exactly the
//! retry path a flaky network would.

use crate::cache::ModelStore;
use crate::client;
use crate::faults::{FaultInjector, FaultKind};
use crate::health::PeerHealth;
use crate::shard::Ring;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Bound on the replication queue: enough for a storm of stores, small
/// enough that a wedged fleet cannot grow memory without bound.
pub const QUEUE_CAPACITY: usize = 256;

/// Per-push network timeout.
const PUSH_TIMEOUT: Duration = Duration::from_secs(5);

/// Shared replication state: the enqueue side lives on the request
/// path, the worker owns the drain side.
pub struct ReplicationState {
    ring: Ring,
    self_addr: String,
    rf: usize,
    store: Arc<ModelStore>,
    health: Arc<PeerHealth>,
    faults: Option<Arc<FaultInjector>>,
    tx: SyncSender<String>,
    /// Hinted handoff records: peer → keys owed to it. BTree keeps
    /// replay order deterministic.
    hints: Mutex<BTreeMap<String, BTreeSet<String>>>,
    /// Keys already read-repaired once (the repair is idempotent; the
    /// dedup only bounds queue traffic).
    repaired: Mutex<BTreeSet<String>>,
    stop: AtomicBool,
    sent: AtomicU64,
    failed: AtomicU64,
    dropped: AtomicU64,
    hints_queued: AtomicU64,
    hints_replayed: AtomicU64,
    read_repairs: AtomicU64,
}

/// Outcome of one push attempt.
enum Push {
    /// The peer acknowledged the model.
    Sent,
    /// The model is no longer held locally — nothing to push.
    Gone,
    /// Transport failure or transient status; worth hinting.
    Failed,
}

impl ReplicationState {
    /// Whether this server is the ring owner of `key`.
    pub fn is_owner(&self, key: &str) -> bool {
        self.ring.owner(key) == Some(self.self_addr.as_str())
    }

    /// This server's advertised fleet address.
    pub fn self_addr(&self) -> &str {
        &self.self_addr
    }

    /// The configured replication factor.
    pub fn replication_factor(&self) -> usize {
        self.rf
    }

    /// Enqueues `key` for asynchronous replication to its replica set.
    /// A full queue drops the work (counted) instead of blocking the
    /// request path.
    pub fn enqueue(&self, key: &str) {
        match self.tx.try_send(key.to_string()) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Read-repair: this replica served a hit for a key it does not
    /// own, so the owner is likely missing the entry — push it back.
    /// Deduplicated per key, so storm traffic enqueues each repair
    /// once.
    pub fn read_repair(&self, key: &str) {
        if self.is_owner(key) {
            return;
        }
        let fresh = self
            .repaired
            .lock()
            .expect("repair lock")
            .insert(key.to_string());
        if fresh {
            self.read_repairs.fetch_add(1, Ordering::Relaxed);
            self.enqueue(key);
        }
    }

    /// Models successfully pushed to a peer.
    pub fn sent(&self) -> u64 {
        self.sent.load(Ordering::Relaxed)
    }

    /// Pushes that failed (transport or refused).
    pub fn failed(&self) -> u64 {
        self.failed.load(Ordering::Relaxed)
    }

    /// Work dropped by queue overflow or an injected `replicate_err`.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Hints recorded for unreachable peers.
    pub fn hints_queued(&self) -> u64 {
        self.hints_queued.load(Ordering::Relaxed)
    }

    /// Hints successfully replayed.
    pub fn hints_replayed(&self) -> u64 {
        self.hints_replayed.load(Ordering::Relaxed)
    }

    /// Read-repairs triggered.
    pub fn read_repairs(&self) -> u64 {
        self.read_repairs.load(Ordering::Relaxed)
    }

    /// Hints currently pending, across all peers (tests).
    pub fn hints_pending(&self) -> usize {
        self.hints
            .lock()
            .expect("hints lock")
            .values()
            .map(BTreeSet::len)
            .sum()
    }

    fn record_hint(&self, peer: &str, key: &str) {
        let fresh = self
            .hints
            .lock()
            .expect("hints lock")
            .entry(peer.to_string())
            .or_default()
            .insert(key.to_string());
        if fresh {
            self.hints_queued.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pushes the locally held model for `key` to `peer` once.
    fn push(&self, peer: &str, key: &str) -> Push {
        let Some(stored) = self.store.get(key) else {
            return Push::Gone;
        };
        // The stored JSON is already canonical, so the request body can
        // be framed without re-serializing the model.
        let body = format!("{{\"model_id\":\"{key}\",\"model\":{}}}", stored.json);
        match client::request_with_deadline(
            peer,
            "POST",
            "/v1/replicate",
            Some(&body),
            Some(PUSH_TIMEOUT),
        ) {
            Ok(resp) if resp.is_ok() => {
                self.health.record_success(peer);
                self.sent.fetch_add(1, Ordering::Relaxed);
                Push::Sent
            }
            Ok(resp) => {
                self.failed.fetch_add(1, Ordering::Relaxed);
                if client::RETRYABLE_STATUSES.contains(&resp.status) {
                    Push::Failed
                } else {
                    // Deterministic rejection (4xx): retrying cannot
                    // change the answer, so do not hint.
                    Push::Gone
                }
            }
            Err(_) => {
                self.health.record_failure(peer);
                self.failed.fetch_add(1, Ordering::Relaxed);
                Push::Failed
            }
        }
    }

    /// Replicates one dequeued key to its replica set (minus self).
    fn replicate_key(&self, key: &str) {
        let targets: Vec<String> = self
            .ring
            .replica_set(key, self.rf)
            .into_iter()
            .filter(|p| *p != self.self_addr)
            .map(str::to_string)
            .collect();
        for peer in targets {
            let fault_drop = self
                .faults
                .as_ref()
                .is_some_and(|f| f.fires(FaultKind::ReplicateErr));
            if fault_drop {
                // The injected network "ate" the push: count the drop
                // and leave a hint so the replay path recovers it.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                self.record_hint(&peer, key);
                continue;
            }
            if !self.health.available(&peer) {
                self.record_hint(&peer, key);
                continue;
            }
            if matches!(self.push(&peer, key), Push::Failed) {
                self.record_hint(&peer, key);
            }
        }
    }

    /// Replays pending hints whose target the health registry admits
    /// again. Network calls happen outside the hints lock.
    fn replay_hints(&self) {
        let snapshot: Vec<(String, Vec<String>)> = {
            let hints = self.hints.lock().expect("hints lock");
            hints
                .iter()
                .filter(|(peer, keys)| !keys.is_empty() && self.health.available(peer))
                .map(|(peer, keys)| (peer.clone(), keys.iter().cloned().collect()))
                .collect()
        };
        for (peer, keys) in snapshot {
            for key in keys {
                let outcome = self.push(&peer, &key);
                match outcome {
                    Push::Sent | Push::Gone => {
                        if let Some(owed) = self.hints.lock().expect("hints lock").get_mut(&peer) {
                            owed.remove(&key);
                        }
                        if matches!(outcome, Push::Sent) {
                            self.hints_replayed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    Push::Failed => break, // peer still sick: next tick
                }
            }
        }
    }

    /// Synchronously streams every locally held model to a reachable
    /// member of its replica set (falling back to any ring successor),
    /// for graceful decommission. Returns `(keys, pushed, failed)`.
    pub fn drain_to_successors(&self) -> (usize, usize, usize) {
        let keys = self.store.keys();
        let total = keys.len();
        let mut pushed = 0usize;
        let mut failed = 0usize;
        for key in keys {
            // Preferred targets first (the key's replica set), then the
            // rest of the successor walk: drain must not lose a key
            // just because its first successor is down.
            let walk: Vec<String> = self
                .ring
                .successors(&key)
                .into_iter()
                .filter(|p| *p != self.self_addr)
                .map(str::to_string)
                .collect();
            let mut done = false;
            for peer in walk {
                if !self.health.available(&peer) {
                    continue;
                }
                match self.push(&peer, &key) {
                    Push::Sent | Push::Gone => {
                        done = true;
                        break;
                    }
                    Push::Failed => continue,
                }
            }
            if done {
                pushed += 1;
            } else {
                failed += 1;
            }
        }
        (total, pushed, failed)
    }
}

/// Handle over the background replication worker.
pub struct ReplicationWorker {
    state: Arc<ReplicationState>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ReplicationWorker {
    /// Signals the worker to stop and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ReplicationWorker {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Builds the replication state and spawns its worker. `tick` bounds
/// both the queue poll latency and the hint-replay cadence (the server
/// passes its probe interval).
pub fn spawn(
    fleet: &[String],
    self_addr: &str,
    rf: usize,
    store: Arc<ModelStore>,
    health: Arc<PeerHealth>,
    faults: Option<Arc<FaultInjector>>,
    tick: Duration,
) -> (Arc<ReplicationState>, ReplicationWorker) {
    let (tx, rx) = std::sync::mpsc::sync_channel(QUEUE_CAPACITY);
    let state = Arc::new(ReplicationState {
        ring: Ring::new(fleet),
        self_addr: self_addr.to_string(),
        rf: rf.max(1),
        store,
        health,
        faults,
        tx,
        hints: Mutex::new(BTreeMap::new()),
        repaired: Mutex::new(BTreeSet::new()),
        stop: AtomicBool::new(false),
        sent: AtomicU64::new(0),
        failed: AtomicU64::new(0),
        dropped: AtomicU64::new(0),
        hints_queued: AtomicU64::new(0),
        hints_replayed: AtomicU64::new(0),
        read_repairs: AtomicU64::new(0),
    });
    let worker_state = Arc::clone(&state);
    let tick = tick.max(Duration::from_millis(10));
    let thread = std::thread::Builder::new()
        .name("gmap-replicator".into())
        .spawn(move || worker_loop(&worker_state, &rx, tick))
        .expect("spawn replication worker");
    (
        Arc::clone(&state),
        ReplicationWorker {
            state,
            thread: Some(thread),
        },
    )
}

fn worker_loop(state: &ReplicationState, rx: &Receiver<String>, tick: Duration) {
    while !state.stop.load(Ordering::SeqCst) {
        match rx.recv_timeout(tick) {
            Ok(key) => state.replicate_key(&key),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        state.replay_hints();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_core::profiler::ProfilerConfig;
    use gmap_gpu::app::Application;
    use gmap_gpu::workloads::{self, Scale};

    fn store_with(keys: &[&str]) -> Arc<ModelStore> {
        let store = Arc::new(ModelStore::new(None).expect("memory store"));
        let kernel = workloads::by_name("kmeans", Scale::Tiny).expect("workload");
        let model = gmap_core::profile_application(
            &Application::single(kernel),
            &ProfilerConfig::default(),
        );
        for key in keys {
            store.insert(key, model.clone());
        }
        store
    }

    /// A fleet whose peers are bound-then-dropped addresses: everything
    /// is unreachable, so pushes fail deterministically.
    fn dead_fleet(n: usize) -> Vec<String> {
        (0..n)
            .map(|_| {
                let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
                l.local_addr().expect("addr").to_string()
            })
            .collect()
    }

    #[test]
    fn unreachable_peers_accumulate_hints_not_blocking() {
        let fleet = dead_fleet(2);
        let store = store_with(&["00aa00aa00aa00aa00aa00aa00aa00aa"]);
        let health = Arc::new(PeerHealth::new(&fleet, Duration::from_secs(60)));
        let (state, worker) = spawn(
            &fleet,
            &fleet[0],
            2,
            store,
            health,
            None,
            Duration::from_millis(20),
        );
        state.enqueue("00aa00aa00aa00aa00aa00aa00aa00aa");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while state.hints_queued() + state.failed() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            state.hints_queued() + state.failed() > 0,
            "a dead peer yields a failed push or a hint"
        );
        assert_eq!(state.sent(), 0);
        worker.stop();
    }

    #[test]
    fn replicate_err_fault_drops_and_hints() {
        let fleet = dead_fleet(2);
        let store = store_with(&["00bb00bb00bb00bb00bb00bb00bb00bb"]);
        let health = Arc::new(PeerHealth::new(&fleet, Duration::from_secs(60)));
        let faults = Arc::new(FaultInjector::new(
            crate::faults::FaultSpec::quiet(5).with(FaultKind::ReplicateErr, 1.0),
        ));
        let (state, worker) = spawn(
            &fleet,
            &fleet[0],
            2,
            store,
            health,
            Some(faults.clone()),
            Duration::from_millis(20),
        );
        state.enqueue("00bb00bb00bb00bb00bb00bb00bb00bb");
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while state.dropped() == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(
            state.dropped() >= 1,
            "rate-1.0 replicate_err drops the push"
        );
        assert!(faults.injected(FaultKind::ReplicateErr) >= 1);
        assert!(
            state.hints_pending() >= 1,
            "the dropped push leaves a hint for replay"
        );
        worker.stop();
    }

    #[test]
    fn read_repair_is_owner_aware_and_deduplicated() {
        let fleet = dead_fleet(3);
        let store = store_with(&[]);
        let health = Arc::new(PeerHealth::new(&fleet, Duration::from_secs(60)));
        let (state, worker) = spawn(
            &fleet,
            &fleet[0],
            2,
            store,
            health,
            None,
            Duration::from_millis(20),
        );
        // Find keys this member does / does not own.
        let mut owned = None;
        let mut foreign = None;
        for i in 0..512u64 {
            // Vary the *high* half: 32-hex keys ring-hash their first
            // 16 hex digits (the content-key fast path).
            let key = format!("{:032x}", u128::from(i) << 96 | 0xabcd);
            if state.is_owner(&key) {
                owned.get_or_insert(key);
            } else {
                foreign.get_or_insert(key);
            }
            if owned.is_some() && foreign.is_some() {
                break;
            }
        }
        let owned = owned.expect("some key is owned");
        let foreign = foreign.expect("some key is foreign");
        state.read_repair(&owned);
        assert_eq!(state.read_repairs(), 0, "owned keys never read-repair");
        state.read_repair(&foreign);
        state.read_repair(&foreign);
        assert_eq!(state.read_repairs(), 1, "repairs deduplicate per key");
        worker.stop();
    }

    #[test]
    fn drain_with_no_reachable_peer_reports_failures() {
        let fleet = dead_fleet(2);
        let store = store_with(&[
            "00cc00cc00cc00cc00cc00cc00cc00cc",
            "00dd00dd00dd00dd00dd00dd00dd00dd",
        ]);
        let health = Arc::new(PeerHealth::new(&fleet, Duration::from_secs(60)));
        let (state, worker) = spawn(
            &fleet,
            &fleet[0],
            2,
            store,
            health,
            None,
            Duration::from_millis(20),
        );
        let (keys, pushed, failed) = state.drain_to_successors();
        assert_eq!(keys, 2);
        assert_eq!(pushed, 0);
        assert_eq!(failed, 2, "an unreachable fleet loses nothing silently");
        worker.stop();
    }
}
