//! Deterministic fault injection for the service's resilience layer.
//!
//! A [`FaultInjector`] is a seeded source of *injection decisions*: each
//! layer that can fail in production (the disk cache, the worker pool,
//! the connection read/write paths) asks it whether to fail *now*, and
//! the chaos tests (`crates/serve/tests/chaos.rs`) drive the whole
//! service under those decisions. Decisions are drawn by hashing
//! `(seed, kind, draw-counter)` through [`mix64`], so a given seed
//! produces the same decision *sequence* per fault kind regardless of
//! wall-clock time — there is no entropy source anywhere in the module,
//! which keeps the chaos suite replayable from a pinned seed.
//!
//! Injection is configured with a spec string (env `GMAP_FAULTS` or
//! `gmap serve --faults`):
//!
//! ```text
//! <seed>:<kind>=<rate>[,<kind>=<rate>...][,slow_ms=<millis>]
//! ```
//!
//! where `<rate>` is a probability in `[0, 1]` and `<kind>` is one of
//!
//! | kind          | injected failure                                        |
//! |---------------|---------------------------------------------------------|
//! | `disk_err`    | disk-cache read/write fails with an I/O error           |
//! | `short_write` | disk-cache write is torn: half the bytes, no rename     |
//! | `panic`       | the handler panics on the worker thread                 |
//! | `slow`        | the handler sleeps `slow_ms` (default 25) before running|
//! | `trunc_body`  | the connection read path truncates the request body     |
//! | `reset`       | the connection resets mid-response (partial write + FIN)|
//! | `replicate_err` | a queued replication push is dropped before sending   |
//!
//! Example: `GMAP_FAULTS=42:panic=0.1,disk_err=0.3,slow=0.5,slow_ms=40`.

use gmap_trace::rng::mix64;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// The failure sites the injector can trigger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Disk-cache read or write fails with an I/O error.
    DiskErr,
    /// Disk-cache write is torn after half the bytes (never renamed).
    ShortWrite,
    /// Handler panics on its worker thread.
    Panic,
    /// Handler sleeps before running.
    Slow,
    /// Connection read path truncates the request body.
    TruncBody,
    /// Connection resets mid-response.
    Reset,
    /// A queued replication push is dropped before it is sent — the
    /// availability layer's retry/hint machinery is the behaviour under
    /// test.
    ReplicateErr,
}

/// All kinds, in spec/display order.
pub const KINDS: [FaultKind; 7] = [
    FaultKind::DiskErr,
    FaultKind::ShortWrite,
    FaultKind::Panic,
    FaultKind::Slow,
    FaultKind::TruncBody,
    FaultKind::Reset,
    FaultKind::ReplicateErr,
];

impl FaultKind {
    /// The spec-grammar name of this kind.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::DiskErr => "disk_err",
            FaultKind::ShortWrite => "short_write",
            FaultKind::Panic => "panic",
            FaultKind::Slow => "slow",
            FaultKind::TruncBody => "trunc_body",
            FaultKind::Reset => "reset",
            FaultKind::ReplicateErr => "replicate_err",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultKind::DiskErr => 0,
            FaultKind::ShortWrite => 1,
            FaultKind::Panic => 2,
            FaultKind::Slow => 3,
            FaultKind::TruncBody => 4,
            FaultKind::Reset => 5,
            FaultKind::ReplicateErr => 6,
        }
    }

    /// Per-kind salt so the decision streams of different kinds are
    /// independent even at equal rates.
    fn salt(self) -> u64 {
        0x6661_756c_7400_0000 | self.index() as u64
    }
}

/// A parsed fault-injection configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Seed of the decision stream.
    pub seed: u64,
    /// Injection probability per kind, indexed by `FaultKind::index`.
    pub rates: [f64; 7],
    /// Sleep injected by the `slow` kind.
    pub slow: Duration,
}

impl FaultSpec {
    /// A spec with every rate zero (useful as a builder base).
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            rates: [0.0; 7],
            slow: Duration::from_millis(25),
        }
    }

    /// Sets one kind's rate, builder-style.
    #[must_use]
    pub fn with(mut self, kind: FaultKind, rate: f64) -> Self {
        self.rates[kind.index()] = rate;
        self
    }

    /// Parses the `<seed>:<kind>=<rate>[,...]` grammar.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for a missing seed, an unknown
    /// kind, or a rate outside `[0, 1]`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed, rest) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad fault spec {spec:?} (expected SEED:KIND=RATE,...)"))?;
        let seed: u64 = seed
            .trim()
            .parse()
            .map_err(|e| format!("bad fault seed {seed:?}: {e}"))?;
        let mut out = FaultSpec::quiet(seed);
        for entry in rest.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let (key, value) = entry
                .split_once('=')
                .ok_or_else(|| format!("bad fault entry {entry:?} (expected KIND=RATE)"))?;
            if key == "slow_ms" {
                let ms: u64 = value
                    .parse()
                    .map_err(|e| format!("bad slow_ms {value:?}: {e}"))?;
                out.slow = Duration::from_millis(ms);
                continue;
            }
            let kind = KINDS
                .iter()
                .copied()
                .find(|k| k.name() == key)
                .ok_or_else(|| {
                    format!(
                        "unknown fault kind {key:?} (known: {}, slow_ms)",
                        KINDS.map(FaultKind::name).join(", ")
                    )
                })?;
            let rate: f64 = value
                .parse()
                .map_err(|e| format!("bad rate {value:?} for {key}: {e}"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("rate {rate} for {key} outside [0, 1]"));
            }
            out.rates[kind.index()] = rate;
        }
        Ok(out)
    }
}

/// The live injector: a [`FaultSpec`] plus per-kind draw counters and an
/// arming switch. One instance is shared by every layer of a server.
#[derive(Debug)]
pub struct FaultInjector {
    spec: FaultSpec,
    armed: AtomicBool,
    draws: [AtomicU64; 7],
    injected: [AtomicU64; 7],
}

impl FaultInjector {
    /// Creates an armed injector from a spec.
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector {
            spec,
            armed: AtomicBool::new(true),
            draws: Default::default(),
            injected: Default::default(),
        }
    }

    /// Arms or disarms injection at runtime (a disarmed injector never
    /// fires). The chaos tests disarm after the storm to assert the
    /// service recovered.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::SeqCst);
    }

    /// The configured spec.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Total faults injected across all kinds.
    pub fn injected_total(&self) -> u64 {
        self.injected
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Faults injected for one kind.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()].load(Ordering::Relaxed)
    }

    /// One deterministic decision draw for `kind`. The value of draw
    /// `n` depends only on `(seed, kind, n)`, never on time.
    fn draw(&self, kind: FaultKind) -> u64 {
        let n = self.draws[kind.index()].fetch_add(1, Ordering::Relaxed);
        mix64(self.spec.seed ^ kind.salt() ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Whether to inject `kind` at this call site, advancing the
    /// decision stream. Counts the injection when it fires.
    pub fn fires(&self, kind: FaultKind) -> bool {
        if !self.armed.load(Ordering::Relaxed) {
            return false;
        }
        let rate = self.spec.rates[kind.index()];
        if rate <= 0.0 {
            return false;
        }
        let x = self.draw(kind) as f64 / (u64::MAX as f64);
        if x < rate {
            self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// If the `slow` fault fires, the duration to sleep.
    pub fn slow_for(&self) -> Option<Duration> {
        self.fires(FaultKind::Slow).then_some(self.spec.slow)
    }

    /// If the `trunc_body` fault fires, the number of connection bytes
    /// to pass through before the stream dies (small, so the truncation
    /// lands inside the request head or body).
    pub fn truncate_after(&self) -> Option<usize> {
        self.fires(FaultKind::TruncBody)
            .then(|| 8 + (self.draw(FaultKind::TruncBody) % 56) as usize)
    }

    /// If the `reset` fault fires, how many of the `total` response
    /// bytes to write before dropping the connection.
    pub fn reset_after(&self, total: usize) -> Option<usize> {
        self.fires(FaultKind::Reset)
            .then(|| (self.draw(FaultKind::Reset) % total.max(1) as u64) as usize)
    }

    /// Panics (on purpose) if the `panic` fault fires. Callers place
    /// this on the worker-pool execution path, where the job queue's
    /// panic containment is the behaviour under test.
    pub fn maybe_panic(&self) {
        if self.fires(FaultKind::Panic) {
            panic!("injected fault: handler panic");
        }
    }
}

/// A [`std::io::Read`] wrapper that truncates the stream after a fault-
/// chosen byte budget, simulating a peer that dies mid-request.
#[derive(Debug)]
pub struct TruncatedReader<R> {
    inner: R,
    /// Bytes still allowed through; `None` = no truncation this
    /// connection.
    remaining: Option<usize>,
}

impl<R: std::io::Read> TruncatedReader<R> {
    /// Wraps `inner`, passing at most `budget` bytes if truncation is
    /// active.
    pub fn new(inner: R, budget: Option<usize>) -> Self {
        TruncatedReader {
            inner,
            remaining: budget,
        }
    }
}

impl<R: std::io::Read> std::io::Read for TruncatedReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self.remaining {
            None => self.inner.read(buf),
            Some(0) => Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                "injected fault: request truncated",
            )),
            Some(budget) => {
                let take = buf.len().min(budget);
                let n = self.inner.read(&mut buf[..take])?;
                self.remaining = Some(budget - n);
                Ok(n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    #[test]
    fn spec_grammar_round_trips() {
        let s = FaultSpec::parse("42:panic=0.25,disk_err=1,slow=0.5,slow_ms=40,replicate_err=0.75")
            .expect("parses");
        assert_eq!(s.seed, 42);
        assert_eq!(s.rates[FaultKind::Panic.index()], 0.25);
        assert_eq!(s.rates[FaultKind::DiskErr.index()], 1.0);
        assert_eq!(s.rates[FaultKind::Slow.index()], 0.5);
        assert_eq!(s.slow, Duration::from_millis(40));
        assert_eq!(s.rates[FaultKind::ReplicateErr.index()], 0.75);
        assert_eq!(s.rates[FaultKind::Reset.index()], 0.0);

        assert!(FaultSpec::parse("no-seed").is_err());
        assert!(FaultSpec::parse("1:bogus=0.5").is_err());
        assert!(FaultSpec::parse("1:panic=1.5").is_err());
        assert!(FaultSpec::parse("1:panic").is_err());
        // A bare seed with no kinds is a valid (quiet) spec.
        assert_eq!(FaultSpec::parse("7:").expect("quiet"), FaultSpec::quiet(7));
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let make = || FaultInjector::new(FaultSpec::parse("9:panic=0.5,reset=0.5").expect("spec"));
        let (a, b) = (make(), make());
        let seq_a: Vec<bool> = (0..64).map(|_| a.fires(FaultKind::Panic)).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.fires(FaultKind::Panic)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same decision stream");
        assert!(seq_a.iter().any(|&f| f) && seq_a.iter().any(|&f| !f));
        assert_eq!(a.injected(FaultKind::Panic), b.injected(FaultKind::Panic));

        // Kinds draw independent streams.
        let c = make();
        let resets: Vec<bool> = (0..64).map(|_| c.fires(FaultKind::Reset)).collect();
        assert_ne!(seq_a, resets);
    }

    #[test]
    fn rate_extremes_and_disarming() {
        let never = FaultInjector::new(FaultSpec::quiet(1));
        let always = FaultInjector::new(FaultSpec::quiet(1).with(FaultKind::DiskErr, 1.0));
        for _ in 0..32 {
            assert!(!never.fires(FaultKind::DiskErr));
            assert!(always.fires(FaultKind::DiskErr));
        }
        assert_eq!(always.injected_total(), 32);
        always.set_armed(false);
        assert!(!always.fires(FaultKind::DiskErr), "disarmed never fires");
        assert_eq!(
            always.injected_total(),
            32,
            "disarmed draws are not counted"
        );
    }

    #[test]
    fn truncated_reader_cuts_the_stream() {
        let data = vec![7u8; 100];
        let mut r = TruncatedReader::new(&data[..], Some(10));
        let mut out = Vec::new();
        let err = r.read_to_end(&mut out).expect_err("stream dies");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        assert_eq!(out.len(), 10, "budgeted bytes pass through first");

        let mut clean = TruncatedReader::new(&data[..], None);
        let mut out = Vec::new();
        clean.read_to_end(&mut out).expect("no truncation");
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn helpers_expose_bounded_parameters() {
        let inj = FaultInjector::new(
            FaultSpec::quiet(3)
                .with(FaultKind::TruncBody, 1.0)
                .with(FaultKind::Reset, 1.0)
                .with(FaultKind::Slow, 1.0),
        );
        let budget = inj.truncate_after().expect("fires at rate 1");
        assert!((8..64).contains(&budget));
        let cut = inj.reset_after(100).expect("fires at rate 1");
        assert!(cut < 100);
        assert_eq!(inj.slow_for(), Some(Duration::from_millis(25)));
    }
}
