//! Router mode: a thin `gmap serve --route peer1,peer2,...` process
//! that owns no model cache of its own and forwards every pipeline
//! request to the replica owning its shard key on the consistent-hash
//! [`Ring`].
//!
//! Design constraints, in order:
//!
//! * **Byte-identical or honest.** A forwarded response is relayed
//!   verbatim; when no replica can answer, the router emits its own
//!   structured 503/504 — always a definite outcome, never a silent
//!   drop. Router-originated and relayed 5xx responses carry
//!   `Retry-After` (every `/v1/*` endpoint is idempotent, so retrying
//!   is always safe).
//! * **Connection-thread forwarding.** The router has no job queue in
//!   the request path: parsing, key derivation, and the peer exchange
//!   all happen on the connection thread, mirroring how `/metrics` and
//!   `/v1/analyze` are served. Backpressure is the replicas' job —
//!   their 429/503 flows straight through.
//! * **Deadline budget propagation.** The remaining budget travels in
//!   [`client::DEADLINE_HEADER`]; a replica clamps its own deadline to
//!   it, so a request that expires in a replica's queue is shed there
//!   (504, handler never runs) instead of being computed for a
//!   requester the router has already given up on.
//! * **Failover on transport failure only.** Refused connections,
//!   resets, and timeouts advance to the ring successor (counted in
//!   `gmap_route_failovers_total`); received statuses are final from
//!   the router's point of view — the client's retry policy owns that
//!   decision. Any replica computes any request correctly, so failover
//!   can't change bytes, only cache locality.
//! * **Health-aware walks.** Every attempt's outcome feeds the shared
//!   [`PeerHealth`] circuit breaker; peers whose breaker is open (or
//!   that advertise draining) are moved to the *end* of the walk
//!   instead of being paid a connect timeout up front. They are never
//!   dropped entirely — if every healthy peer fails, the ejected ones
//!   are still tried, so routing is never worse than breaker-less
//!   failover.
//!
//! `/v1/ingest` streams: the body is re-framed chunk by chunk to the
//! owning replica (never materialized on the router). Failover happens
//! only while connecting — once body bytes have flowed they cannot be
//! replayed, so a mid-stream failure is an honest 503 with
//! `Connection: close`.

use crate::api::ApiError;
use crate::client;
use crate::health::PeerHealth;
use crate::http::{self, ReadError, RequestHead};
use crate::metrics::Metrics;
use crate::shard::{self, Ring};
use gmap_core::cachekey;
use std::io::Read;
use std::net::TcpStream;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The routing state of a router-mode server: the ring plus the shared
/// peer-health registry — no model cache, so any number of routers can
/// front the same replica fleet.
#[derive(Debug)]
pub struct Router {
    ring: Ring,
    health: Arc<PeerHealth>,
}

impl Router {
    /// Builds a router over the replica addresses, sharing `health`
    /// with the server's prober and metrics sampler.
    pub fn new(peers: &[String], health: Arc<PeerHealth>) -> Router {
        Router {
            ring: Ring::new(peers),
            health,
        }
    }

    /// The consistent-hash ring (tests compute expected owners from it).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The shared peer-health registry.
    pub fn health(&self) -> &Arc<PeerHealth> {
        &self.health
    }

    /// The failover walk for `key`: healthy peers in ring order first,
    /// then ejected/draining peers as a last resort. Skipping an
    /// ejected peer saves its connect timeout on the hot path without
    /// ever making a key unservable.
    fn walk(&self, key: &str) -> Vec<&str> {
        let order = self.ring.successors(key);
        let (mut usable, skipped): (Vec<&str>, Vec<&str>) =
            order.into_iter().partition(|p| self.health.usable(p));
        usable.extend(skipped);
        usable
    }

    /// Forwards one materialized JSON request to the owning replica and
    /// relays its response. `budget` is the time remaining before this
    /// request's deadline; it is propagated to the peer and bounds the
    /// whole failover walk. Returns `(status, body)`.
    pub fn forward(
        &self,
        metrics: &Metrics,
        path: &str,
        body: &str,
        budget: Duration,
    ) -> (u16, String) {
        let key = shard::request_key(path, body)
            .unwrap_or_else(|| cachekey::content_key(if body.is_empty() { path } else { body }));
        let give_up = Instant::now() + budget;
        let mut attempted = 0usize;
        for peer in self.walk(&key) {
            let remaining = give_up.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            if attempted > 0 {
                self.count_failover(metrics);
            }
            attempted += 1;
            match client::request_with_deadline(peer, "POST", path, Some(body), Some(remaining)) {
                Ok(resp) => {
                    self.health.record_success(peer);
                    self.count_forward(metrics, peer);
                    return (resp.status, resp.body);
                }
                Err(_) => {
                    // Transport failure: feed the breaker, try the
                    // successor.
                    self.health.record_failure(peer);
                    continue;
                }
            }
        }
        self.no_replica_reply(attempted, give_up)
    }

    /// Forwards a streaming `/v1/ingest` request: decodes the inbound
    /// body with the normal [`http::BodyReader`] limits and re-frames it
    /// chunked to the owning replica. Returns `(status, body,
    /// body_fully_consumed)` like the local ingest endpoint, or `None`
    /// when the *client* transport died mid-body and nothing can be
    /// answered.
    pub fn forward_ingest<R: std::io::BufRead>(
        &self,
        metrics: &Metrics,
        head: &RequestHead,
        reader: &mut R,
        budget: Duration,
    ) -> Option<(u16, String, bool)> {
        let err = |e: ApiError| Some((e.status, e.body(), false));
        let key = cachekey::content_key(&head.path);
        let kind = match http::body_kind(head) {
            Ok(k) => k,
            Err(ReadError::Malformed(msg)) => return err(ApiError::bad_request(msg)),
            Err(_) => return None,
        };
        let mut body = match http::BodyReader::new(reader, kind, http::MAX_INGEST_BODY_BYTES) {
            Ok(b) => b,
            Err(ReadError::TooLarge(msg)) => return err(ApiError::new(413, msg)),
            Err(_) => return None,
        };
        let give_up = Instant::now() + budget;

        // Connect phase: the only point where failover is still free —
        // no body bytes have been consumed yet.
        let mut attempted = 0usize;
        let mut connected: Option<(&str, TcpStream)> = None;
        for peer in self.walk(&key) {
            if give_up.saturating_duration_since(Instant::now()).is_zero() {
                break;
            }
            if attempted > 0 {
                self.count_failover(metrics);
            }
            attempted += 1;
            match TcpStream::connect(peer) {
                Ok(stream) => {
                    connected = Some((peer, stream));
                    break;
                }
                Err(_) => self.health.record_failure(peer),
            }
        }
        let Some((peer, mut stream)) = connected else {
            let (status, reply) = self.no_replica_reply(attempted, give_up);
            return Some((status, reply, false));
        };

        let remaining = give_up.saturating_duration_since(Instant::now());
        let exchange = stream_body_to_peer(&mut stream, head, &mut body, remaining);
        match exchange {
            Ok(resp) => {
                self.health.record_success(peer);
                self.count_forward(metrics, peer);
                Some((resp.status, resp.body, true))
            }
            // The client-side body failed mid-stream: answer its error
            // and force a close (the unread tail is unframed garbage).
            Err(StreamError::Client(e)) => err(e),
            Err(StreamError::ClientGone) => None,
            // The peer died after body bytes flowed: the stream cannot
            // be replayed, so this is an honest transient 503.
            Err(StreamError::Peer) => {
                self.health.record_failure(peer);
                Some((
                    503,
                    ApiError::new(503, format!("replica {peer} failed mid-stream, retry")).body(),
                    false,
                ))
            }
        }
    }

    /// The honest reply when no replica produced a response: 504 when
    /// the budget ran out mid-walk, 503 otherwise — both transient,
    /// both carrying `Retry-After` (added by the response writer).
    fn no_replica_reply(&self, attempted: usize, give_up: Instant) -> (u16, String) {
        if give_up.saturating_duration_since(Instant::now()).is_zero() {
            let e = ApiError::new(504, "deadline exceeded while forwarding");
            (e.status, e.body())
        } else {
            let e = ApiError::new(
                503,
                format!("no replica reachable ({attempted} tried), retry"),
            );
            (e.status, e.body())
        }
    }

    fn count_forward(&self, metrics: &Metrics, peer: &str) {
        if let Some(route) = &metrics.route {
            route.record_forward(peer);
        }
    }

    fn count_failover(&self, metrics: &Metrics) {
        if let Some(route) = &metrics.route {
            route.failovers.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Why a streamed forward failed.
enum StreamError {
    /// The inbound body was malformed/oversized/stalled: answer the
    /// mapped error to the client.
    Client(ApiError),
    /// The inbound transport died: nothing can be answered.
    ClientGone,
    /// The peer connection failed after body bytes were sent.
    Peer,
}

/// Streams the decoded body to the connected peer as chunked transfer
/// encoding and reads back its response.
fn stream_body_to_peer<R: std::io::BufRead>(
    stream: &mut TcpStream,
    head: &RequestHead,
    body: &mut http::BodyReader<'_, R>,
    budget: Duration,
) -> Result<client::Response, StreamError> {
    let setup = stream
        .set_read_timeout(Some(budget + Duration::from_secs(2)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(30))));
    if setup.is_err() {
        return Err(StreamError::Peer);
    }
    let peer_head = format!(
        "POST {} HTTP/1.1\r\nHost: router\r\nContent-Type: application/octet-stream\r\n\
         Transfer-Encoding: chunked\r\n{}: {}\r\nConnection: close\r\n\r\n",
        head.path,
        client::DEADLINE_HEADER,
        budget.as_millis()
    );
    if client::write_all_looping(stream, peer_head.as_bytes()).is_err() {
        return Err(StreamError::Peer);
    }
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        let n = match body.next_piece(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(ReadError::Malformed(msg)) => {
                return Err(StreamError::Client(ApiError::bad_request(msg)))
            }
            Err(ReadError::TooLarge(msg)) => {
                return Err(StreamError::Client(ApiError::new(413, msg)))
            }
            Err(ReadError::Timeout { .. }) => {
                return Err(StreamError::Client(ApiError::new(
                    408,
                    "timed out reading trace body",
                )))
            }
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return Err(StreamError::ClientGone),
        };
        let framed_ok = client::write_all_looping(stream, format!("{n:x}\r\n").as_bytes()).is_ok()
            && client::write_all_looping(stream, &buf[..n]).is_ok()
            && client::write_all_looping(stream, b"\r\n").is_ok();
        if !framed_ok {
            return Err(StreamError::Peer);
        }
    }
    if client::write_all_looping(stream, b"0\r\n\r\n").is_err() {
        return Err(StreamError::Peer);
    }
    let mut raw = Vec::new();
    if stream.read_to_end(&mut raw).is_err() {
        return Err(StreamError::Peer);
    }
    client::parse_response(&raw).map_err(|_| StreamError::Peer)
}
