//! Bounded job queue with backpressure and drain-aware shutdown.
//!
//! Connection threads submit closures; a fixed worker pool executes them.
//! The queue is deliberately *bounded*: when it is full, [`JobQueue::submit`]
//! fails immediately with [`SubmitError::Full`] and the service answers
//! 429 instead of queueing unbounded work. Shutdown is drain-first — once
//! [`JobQueue::shutdown`] is called no new work is accepted, but every job
//! already accepted runs to completion before the workers exit.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// A unit of queued work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity (answer 429).
    Full,
    /// The service is shutting down (answer 503).
    ShuttingDown,
}

struct QueueState {
    jobs: VecDeque<Job>,
    in_flight: usize,
    shutting_down: bool,
}

/// A bounded multi-producer job queue drained by a worker pool.
pub struct JobQueue {
    state: Mutex<QueueState>,
    cond: Condvar,
    capacity: usize,
    panics: AtomicU64,
}

impl JobQueue {
    /// Creates a queue holding at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::with_capacity(capacity.min(1024)),
                in_flight: 0,
                shutting_down: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            panics: AtomicU64::new(0),
        }
    }

    /// Jobs whose execution panicked (the panic was contained and the
    /// worker survived). Surfaced as `gmap_worker_panics_total`.
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Enqueues a job, failing fast on a full queue or during shutdown.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when the queue holds `capacity` pending jobs,
    /// [`SubmitError::ShuttingDown`] after [`JobQueue::shutdown`].
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.jobs.len() >= self.capacity {
            return Err(SubmitError::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.cond.notify_one();
        Ok(())
    }

    /// Number of jobs waiting to run (excluding in-flight jobs).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").jobs.len()
    }

    /// Number of jobs currently executing on workers.
    pub fn in_flight(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").in_flight
    }

    /// Runs jobs until shutdown *and* queue exhaustion. Worker threads
    /// call this as their body; a panicking job is contained and does not
    /// take the worker down.
    pub fn worker_loop(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("queue lock poisoned");
                loop {
                    if let Some(job) = state.jobs.pop_front() {
                        state.in_flight += 1;
                        break Some(job);
                    }
                    if state.shutting_down {
                        break None;
                    }
                    state = self.cond.wait(state).expect("queue lock poisoned");
                }
            };
            let Some(job) = job else { return };
            // Contain panics: the requester observes a disconnected
            // channel and answers a structured 500; the worker survives.
            if catch_unwind(AssertUnwindSafe(job)).is_err() {
                self.panics.fetch_add(1, Ordering::Relaxed);
            }
            let mut state = self.state.lock().expect("queue lock poisoned");
            state.in_flight -= 1;
            drop(state);
            // Wake both idle workers and any wait_drained() caller.
            self.cond.notify_all();
        }
    }

    /// Stops accepting work and wakes all workers so they can drain and
    /// exit.
    pub fn shutdown(&self) {
        self.state
            .lock()
            .expect("queue lock poisoned")
            .shutting_down = true;
        self.cond.notify_all();
    }

    /// Blocks until every accepted job has finished executing.
    pub fn wait_drained(&self) {
        let mut state = self.state.lock().expect("queue lock poisoned");
        while !state.jobs.is_empty() || state.in_flight > 0 {
            state = self.cond.wait(state).expect("queue lock poisoned");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    fn pool(queue: &Arc<JobQueue>, n: usize) -> Vec<thread::JoinHandle<()>> {
        (0..n)
            .map(|_| {
                let q = Arc::clone(queue);
                thread::spawn(move || q.worker_loop())
            })
            .collect()
    }

    #[test]
    fn executes_submitted_jobs() {
        let queue = Arc::new(JobQueue::new(16));
        let workers = pool(&queue, 2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let c = Arc::clone(&counter);
            queue
                .submit(Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }))
                .expect("queue has room");
        }
        queue.shutdown();
        queue.wait_drained();
        assert_eq!(counter.load(Ordering::SeqCst), 10);
        for w in workers {
            w.join().expect("worker exits cleanly");
        }
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let queue = Arc::new(JobQueue::new(1));
        // No workers: the single slot fills and stays full.
        queue.submit(Box::new(|| ())).expect("first fits");
        assert_eq!(
            queue.submit(Box::new(|| ())).expect_err("second rejected"),
            SubmitError::Full
        );
        assert_eq!(queue.depth(), 1);
    }

    #[test]
    fn shutdown_drains_accepted_jobs_then_rejects() {
        let queue = Arc::new(JobQueue::new(16));
        let (tx, rx) = mpsc::channel();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        // One slow job holds the worker; several more queue behind it.
        queue
            .submit(Box::new(move || {
                gate_rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("gate opens");
            }))
            .expect("slow job accepted");
        for i in 0..4 {
            let tx = tx.clone();
            queue
                .submit(Box::new(move || tx.send(i).expect("receiver alive")))
                .expect("job accepted");
        }
        let workers = pool(&queue, 1);
        queue.shutdown();
        assert_eq!(
            queue.submit(Box::new(|| ())).expect_err("post-shutdown"),
            SubmitError::ShuttingDown
        );
        gate_tx.send(()).expect("worker waiting on gate");
        queue.wait_drained();
        let done: Vec<i32> = rx.try_iter().collect();
        assert_eq!(done, vec![0, 1, 2, 3], "accepted jobs all ran, in order");
        for w in workers {
            w.join().expect("worker exits cleanly");
        }
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let queue = Arc::new(JobQueue::new(8));
        let workers = pool(&queue, 1);
        queue
            .submit(Box::new(|| panic!("handler bug")))
            .expect("accepted");
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        queue
            .submit(Box::new(move || {
                r.store(1, Ordering::SeqCst);
            }))
            .expect("accepted");
        queue.shutdown();
        queue.wait_drained();
        assert_eq!(ran.load(Ordering::SeqCst), 1, "worker survived the panic");
        assert_eq!(queue.panics(), 1, "contained panic was counted");
        for w in workers {
            w.join().expect("worker exits cleanly");
        }
    }
}
