//! Minimal blocking HTTP/1.1 client for `gmap client` and the tests.
//!
//! Each call opens one connection, writes one request, and reads the
//! `Connection: close` response to EOF — exactly matching the server's
//! one-request-per-connection model.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (UTF-8; the service only emits JSON and text).
    pub body: String,
}

impl Response {
    /// Whether the status is a 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Performs one request against `addr` (e.g. `"127.0.0.1:8080"`).
///
/// # Errors
///
/// Transport failures and unparseable responses surface as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{payload}",
        payload.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Convenience `GET`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None)
}

/// Convenience `POST` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: &str, path: &str, json: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(json))
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    Ok(Response {
        status,
        body: body.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("parses");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");
        assert!(r.is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\nx").is_err());
    }
}
