//! Minimal blocking HTTP/1.1 client for `gmap client` and the tests,
//! plus a retrying wrapper with exponential backoff and decorrelated
//! jitter.
//!
//! Each call opens one connection, writes one request (looping on
//! partial writes), and reads the `Connection: close` response to EOF.
//! The response's `Content-Length` is verified against the bytes
//! actually received, so a connection reset mid-body surfaces as a
//! transport error instead of a silently truncated result.
//!
//! Retry policy: only idempotent requests are retried. Every pipeline
//! endpoint is content-addressed — the same spec always produces the
//! same model — so `GET`s and the `/v1/*` `POST`s all qualify. Transient
//! statuses (408, 429, 500, 503, 504) and transport errors back off
//! exponentially with decorrelated jitter; a server-provided
//! `Retry-After` is honored, clamped to the policy cap. The jitter is
//! seeded (via [`gmap_trace::rng::mix64`]) so a given policy replays the
//! same sleep schedule.

use crate::health::{self, PeerHealth, ProbeHandle};
use crate::shard::Ring;
use gmap_core::cachekey;
use gmap_trace::rng::mix64;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Request header carrying the remaining deadline budget in
/// milliseconds. Set by the router (and [`request_with_deadline`]),
/// honored by replicas: a peer clamps its own per-request deadline to
/// this value so it never keeps working on a request whose requester
/// has already been answered 504 upstream.
pub const DEADLINE_HEADER: &str = "X-Gmap-Deadline-Ms";

/// Read-timeout grace beyond the propagated budget: long enough for a
/// peer's honest in-budget 504 to arrive before the transport gives up.
const BUDGET_GRACE: Duration = Duration::from_secs(2);

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (UTF-8; the service only emits JSON and text).
    pub body: String,
    /// Seconds from a `Retry-After` header, when the server sent one.
    pub retry_after: Option<u64>,
}

impl Response {
    /// Whether the status is a 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Statuses worth retrying: timeouts, backpressure, and contained
/// worker failures. 4xx validation errors are deterministic and final.
pub const RETRYABLE_STATUSES: [u16; 5] = [408, 429, 500, 503, 504];

/// Whether `(method, path)` is safe to retry. Every pipeline endpoint is
/// content-addressed (the request body fully determines the result), so
/// replays are harmless.
pub fn is_idempotent(method: &str, path: &str) -> bool {
    method == "GET" || (method == "POST" && path.starts_with("/v1/"))
}

/// Backoff configuration for [`request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single attempt).
    pub max_retries: u32,
    /// Minimum sleep between attempts.
    pub base: Duration,
    /// Maximum sleep between attempts (also clamps `Retry-After`).
    pub cap: Duration,
    /// Jitter seed: a fixed policy replays a fixed sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            seed: 0x6761_705f_636c_6965, // "gap_clie", arbitrary fixed seed
        }
    }
}

impl RetryPolicy {
    /// Decorrelated jitter (`sleep = rand(base, prev * 3)`, capped): the
    /// classic scheme that spreads concurrent retriers apart instead of
    /// synchronizing them into waves.
    fn next_sleep(&self, prev: Duration, attempt: u32) -> Duration {
        let lo = self.base.as_millis().max(1) as u64;
        let hi = (prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
        let draw = mix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Duration::from_millis((lo + draw % (hi - lo)).min(self.cap.as_millis() as u64))
    }
}

/// Performs one request against `addr` (e.g. `"127.0.0.1:8080"`).
///
/// # Errors
///
/// Transport failures and unparseable responses surface as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    request_with_deadline(addr, method, path, body, None)
}

/// Performs one request carrying a deadline budget: the remaining
/// budget is propagated in [`DEADLINE_HEADER`] and the read timeout is
/// tightened to budget + a small grace (so a replica's honest in-budget
/// 504 wins over the transport timeout). `None` behaves like
/// [`request`].
///
/// # Errors
///
/// Transport failures and unparseable responses surface as `io::Error`.
pub fn request_with_deadline(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    budget: Option<Duration>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    let read_timeout = budget.map_or(Duration::from_secs(120), |b| b + BUDGET_GRACE);
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    let deadline_line = budget.map_or(String::new(), |b| {
        format!("{DEADLINE_HEADER}: {}\r\n", b.as_millis())
    });
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{deadline_line}Connection: close\r\n\r\n",
        payload.len()
    );
    let mut request = head.into_bytes();
    request.extend_from_slice(payload.as_bytes());
    write_all_looping(&mut stream, &request)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Writes the whole buffer, looping on short writes instead of assuming
/// one `write` call moves everything (a stalled or slow server must not
/// silently truncate the request).
pub(crate) fn write_all_looping<W: Write>(writer: &mut W, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match writer.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection closed mid-request",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Performs a request, retrying transient failures when the request is
/// idempotent. Non-idempotent requests get exactly one attempt.
///
/// # Errors
///
/// The last transport error once retries are exhausted.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> std::io::Result<Response> {
    let attempts = if is_idempotent(method, path) {
        policy.max_retries + 1
    } else {
        1
    };
    let mut sleep = policy.base;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(sleep);
        }
        let hint = match request(addr, method, path, body) {
            Ok(resp) if !RETRYABLE_STATUSES.contains(&resp.status) => return Ok(resp),
            Ok(resp) if attempt + 1 == attempts => return Ok(resp),
            Ok(resp) => resp.retry_after,
            Err(e) => {
                last_err = Some(e);
                None
            }
        };
        sleep = policy.next_sleep(sleep, attempt);
        if let Some(secs) = hint {
            // Honor the server's hint, but never beyond the local cap —
            // the caller's patience bounds the server's request.
            sleep = sleep.max(Duration::from_secs(secs)).min(policy.cap);
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
}

/// Peer-aware sharded client: computes each request's shard key (the
/// model id it reads or creates), sends it to the owning replica on the
/// consistent-hash [`Ring`], and **fails over to the ring successors on
/// transport failures** — connection refused, reset mid-response, or a
/// read timeout. Every replica serves every request correctly (the
/// model cache is an accelerator over a content-addressed pipeline), so
/// failover preserves byte-identical results and only costs cache
/// locality on the substitute replica.
///
/// Transient *statuses* (408/429/500/503/504) stay on the same peer —
/// the replica is alive and its `Retry-After` is the better signal;
/// only a failed transport advances to the successor. Both paths share
/// the policy's seeded backoff schedule, and non-idempotent requests
/// get exactly one attempt, as in [`request_with_retry`].
///
/// Every exchange feeds a shared [`PeerHealth`] circuit breaker:
/// ejected (or draining) peers are moved to the *end* of the walk, so
/// repeated requests stop paying a dead replica's connect timeout —
/// without ever making a key unservable (the ejected peers remain the
/// last resort). [`PeerClient::spawn_prober`] adds active `/healthz`
/// probing on top for long-lived clients.
#[derive(Debug, Clone)]
pub struct PeerClient {
    ring: Ring,
    policy: RetryPolicy,
    health: Arc<PeerHealth>,
}

/// Probe interval assumed when a client builds its own health registry
/// (drives the breaker cooldown; [`PeerClient::spawn_prober`] may use a
/// different cadence).
pub const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_millis(500);

impl PeerClient {
    /// Builds a client over `peers` (replica `host:port` addresses)
    /// with its own private health registry.
    pub fn new(peers: &[String], policy: RetryPolicy) -> PeerClient {
        let health = Arc::new(PeerHealth::new(peers, DEFAULT_PROBE_INTERVAL));
        PeerClient::with_health(peers, policy, health)
    }

    /// Builds a client sharing an existing health registry (a server
    /// embedding a client reuses its prober's view of the fleet).
    pub fn with_health(
        peers: &[String],
        policy: RetryPolicy,
        health: Arc<PeerHealth>,
    ) -> PeerClient {
        PeerClient {
            ring: Ring::new(peers),
            policy,
            health,
        }
    }

    /// The underlying consistent-hash ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The shared peer-health registry.
    pub fn health(&self) -> &Arc<PeerHealth> {
        &self.health
    }

    /// Spawns an active `/healthz` prober over this client's peers,
    /// feeding its health registry. The returned handle stops the
    /// prober when dropped.
    pub fn spawn_prober(&self, interval: Duration) -> ProbeHandle {
        health::spawn_prober(Arc::clone(&self.health), interval, None)
    }

    /// Performs a request against the owning replica, deriving the
    /// shard key from the request itself (falling back to a hash of the
    /// body for unroutable requests, so the choice stays deterministic).
    ///
    /// # Errors
    ///
    /// The last transport error once every peer and retry is exhausted,
    /// or immediately when the ring is empty.
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let key = crate::shard::request_key(path, body.unwrap_or(""))
            .unwrap_or_else(|| cachekey::content_key(body.unwrap_or(path)));
        self.request_keyed(&key, method, path, body)
    }

    /// Performs a request routed by an explicit shard key.
    ///
    /// # Errors
    ///
    /// See [`PeerClient::request`].
    pub fn request_keyed(
        &self,
        key: &str,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<Response> {
        let order = self.ring.successors(key);
        if order.is_empty() {
            return Err(std::io::Error::other("peer ring is empty"));
        }
        // Health-aware walk: usable peers in ring order, then ejected/
        // draining ones as the last resort (skipping them outright
        // could strand a key when the whole fleet looks down).
        let (mut walk, skipped): (Vec<&str>, Vec<&str>) =
            order.into_iter().partition(|p| self.health.usable(p));
        walk.extend(skipped);
        let attempts = if is_idempotent(method, path) {
            self.policy.max_retries + 1
        } else {
            1
        };
        let mut sleep = self.policy.base;
        let mut peer_idx = 0usize;
        let mut last_err = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(sleep);
            }
            let peer = walk[peer_idx % walk.len()];
            let outcome = request(peer, method, path, body);
            match &outcome {
                Ok(_) => self.health.record_success(peer),
                Err(_) => self.health.record_failure(peer),
            }
            let hint = match outcome {
                Ok(resp) if !RETRYABLE_STATUSES.contains(&resp.status) => return Ok(resp),
                Ok(resp) if attempt + 1 == attempts => return Ok(resp),
                Ok(resp) => resp.retry_after,
                Err(e) => {
                    // Transport failure: this replica is unreachable or
                    // died mid-response — fail over to the successor.
                    last_err = Some(e);
                    peer_idx += 1;
                    None
                }
            };
            sleep = self.policy.next_sleep(sleep, attempt);
            if let Some(secs) = hint {
                sleep = sleep.max(Duration::from_secs(secs)).min(self.policy.cap);
            }
        }
        Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
    }
}

/// Convenience `GET`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None)
}

/// Convenience `POST` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: &str, path: &str, json: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(json))
}

/// `POST` with a `Transfer-Encoding: chunked` body streamed from
/// `reader` in `chunk_size`-byte pieces — for `/v1/ingest`, where the
/// body is a raw trace that may be too large to hold in memory. Each
/// piece is framed (`<hex len>\r\n<data>\r\n`) and written immediately,
/// so the client's resident buffer is one chunk regardless of trace
/// size.
///
/// # Errors
///
/// Transport failures and unparseable responses surface as `io::Error`.
pub fn post_chunked<R: Read>(
    addr: &str,
    path: &str,
    reader: &mut R,
    chunk_size: usize,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/octet-stream\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    write_all_looping(&mut stream, head.as_bytes())?;
    let mut buf = vec![0u8; chunk_size.max(1)];
    loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        write_all_looping(&mut stream, format!("{n:x}\r\n").as_bytes())?;
        write_all_looping(&mut stream, &buf[..n])?;
        write_all_looping(&mut stream, b"\r\n")?;
    }
    write_all_looping(&mut stream, b"0\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

pub(crate) fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let header = |name: &str| {
        head.lines().skip(1).find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    };
    if let Some(expected) = header("content-length").and_then(|v| v.parse::<usize>().ok()) {
        if body.len() != expected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "response truncated: got {} of {} body bytes",
                    body.len(),
                    expected
                ),
            ));
        }
    }
    let retry_after = header("retry-after").and_then(|v| v.parse().ok());
    Ok(Response {
        status,
        body: body.to_string(),
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("parses");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");
        assert!(r.is_ok());
        assert_eq!(r.retry_after, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\nx").is_err());
    }

    #[test]
    fn truncated_body_is_a_transport_error() {
        let r = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{\"a\"");
        assert!(r.is_err(), "reset mid-body must not parse as success");
    }

    #[test]
    fn retry_after_header_is_parsed() {
        let r = parse_response(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 7\r\n\r\n")
            .expect("parses");
        assert_eq!(r.retry_after, Some(7));
    }

    #[test]
    fn idempotency_is_method_and_path_aware() {
        assert!(is_idempotent("GET", "/metrics"));
        assert!(is_idempotent("POST", "/v1/profile"));
        assert!(is_idempotent("POST", "/v1/evaluate"));
        assert!(!is_idempotent("POST", "/admin/reset"));
        assert!(!is_idempotent("DELETE", "/v1/profile"));
    }

    #[test]
    fn jitter_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 42,
        };
        let mut a = policy.base;
        let mut b = policy.base;
        for attempt in 0..5 {
            a = policy.next_sleep(a, attempt);
            b = policy.next_sleep(b, attempt);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a >= policy.base && a <= policy.cap);
        }
        let other = RetryPolicy { seed: 43, ..policy };
        let mut c = other.base;
        let mut differs = false;
        let mut d = policy.base;
        for attempt in 0..5 {
            c = other.next_sleep(c, attempt);
            d = policy.next_sleep(d, attempt);
            differs |= c != d;
        }
        assert!(differs, "different seeds decorrelate");
    }

    #[test]
    fn partial_writes_are_looped() {
        // A writer that accepts one byte at a time.
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = OneByte(Vec::new());
        write_all_looping(&mut w, b"hello world").expect("writes fully");
        assert_eq!(w.0, b"hello world");
    }
}
