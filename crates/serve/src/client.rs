//! Minimal blocking HTTP/1.1 client for `gmap client` and the tests,
//! plus a retrying wrapper with exponential backoff and decorrelated
//! jitter.
//!
//! Each call opens one connection, writes one request (looping on
//! partial writes), and reads the `Connection: close` response to EOF.
//! The response's `Content-Length` is verified against the bytes
//! actually received, so a connection reset mid-body surfaces as a
//! transport error instead of a silently truncated result.
//!
//! Retry policy: only idempotent requests are retried. Every pipeline
//! endpoint is content-addressed — the same spec always produces the
//! same model — so `GET`s and the `/v1/*` `POST`s all qualify. Transient
//! statuses (408, 429, 500, 503, 504) and transport errors back off
//! exponentially with decorrelated jitter; a server-provided
//! `Retry-After` is honored, clamped to the policy cap. The jitter is
//! seeded (via [`gmap_trace::rng::mix64`]) so a given policy replays the
//! same sleep schedule.

use gmap_trace::rng::mix64;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (UTF-8; the service only emits JSON and text).
    pub body: String,
    /// Seconds from a `Retry-After` header, when the server sent one.
    pub retry_after: Option<u64>,
}

impl Response {
    /// Whether the status is a 2xx.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// Statuses worth retrying: timeouts, backpressure, and contained
/// worker failures. 4xx validation errors are deterministic and final.
pub const RETRYABLE_STATUSES: [u16; 5] = [408, 429, 500, 503, 504];

/// Whether `(method, path)` is safe to retry. Every pipeline endpoint is
/// content-addressed (the request body fully determines the result), so
/// replays are harmless.
pub fn is_idempotent(method: &str, path: &str) -> bool {
    method == "GET" || (method == "POST" && path.starts_with("/v1/"))
}

/// Backoff configuration for [`request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = single attempt).
    pub max_retries: u32,
    /// Minimum sleep between attempts.
    pub base: Duration,
    /// Maximum sleep between attempts (also clamps `Retry-After`).
    pub cap: Duration,
    /// Jitter seed: a fixed policy replays a fixed sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(100),
            cap: Duration::from_secs(5),
            seed: 0x6761_705f_636c_6965, // "gap_clie", arbitrary fixed seed
        }
    }
}

impl RetryPolicy {
    /// Decorrelated jitter (`sleep = rand(base, prev * 3)`, capped): the
    /// classic scheme that spreads concurrent retriers apart instead of
    /// synchronizing them into waves.
    fn next_sleep(&self, prev: Duration, attempt: u32) -> Duration {
        let lo = self.base.as_millis().max(1) as u64;
        let hi = (prev.as_millis() as u64).saturating_mul(3).max(lo + 1);
        let draw = mix64(self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Duration::from_millis((lo + draw % (hi - lo)).min(self.cap.as_millis() as u64))
    }
}

/// Performs one request against `addr` (e.g. `"127.0.0.1:8080"`).
///
/// # Errors
///
/// Transport failures and unparseable responses surface as `io::Error`.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let payload = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    let mut request = head.into_bytes();
    request.extend_from_slice(payload.as_bytes());
    write_all_looping(&mut stream, &request)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Writes the whole buffer, looping on short writes instead of assuming
/// one `write` call moves everything (a stalled or slow server must not
/// silently truncate the request).
fn write_all_looping<W: Write>(writer: &mut W, mut buf: &[u8]) -> std::io::Result<()> {
    while !buf.is_empty() {
        match writer.write(buf) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WriteZero,
                    "connection closed mid-request",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Performs a request, retrying transient failures when the request is
/// idempotent. Non-idempotent requests get exactly one attempt.
///
/// # Errors
///
/// The last transport error once retries are exhausted.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
) -> std::io::Result<Response> {
    let attempts = if is_idempotent(method, path) {
        policy.max_retries + 1
    } else {
        1
    };
    let mut sleep = policy.base;
    let mut last_err = None;
    for attempt in 0..attempts {
        if attempt > 0 {
            std::thread::sleep(sleep);
        }
        let hint = match request(addr, method, path, body) {
            Ok(resp) if !RETRYABLE_STATUSES.contains(&resp.status) => return Ok(resp),
            Ok(resp) if attempt + 1 == attempts => return Ok(resp),
            Ok(resp) => resp.retry_after,
            Err(e) => {
                last_err = Some(e);
                None
            }
        };
        sleep = policy.next_sleep(sleep, attempt);
        if let Some(secs) = hint {
            // Honor the server's hint, but never beyond the local cap —
            // the caller's patience bounds the server's request.
            sleep = sleep.max(Duration::from_secs(secs)).min(policy.cap);
        }
    }
    Err(last_err.unwrap_or_else(|| std::io::Error::other("retries exhausted")))
}

/// Convenience `GET`.
///
/// # Errors
///
/// See [`request`].
pub fn get(addr: &str, path: &str) -> std::io::Result<Response> {
    request(addr, "GET", path, None)
}

/// Convenience `POST` with a JSON body.
///
/// # Errors
///
/// See [`request`].
pub fn post_json(addr: &str, path: &str, json: &str) -> std::io::Result<Response> {
    request(addr, "POST", path, Some(json))
}

/// `POST` with a `Transfer-Encoding: chunked` body streamed from
/// `reader` in `chunk_size`-byte pieces — for `/v1/ingest`, where the
/// body is a raw trace that may be too large to hold in memory. Each
/// piece is framed (`<hex len>\r\n<data>\r\n`) and written immediately,
/// so the client's resident buffer is one chunk regardless of trace
/// size.
///
/// # Errors
///
/// Transport failures and unparseable responses surface as `io::Error`.
pub fn post_chunked<R: Read>(
    addr: &str,
    path: &str,
    reader: &mut R,
    chunk_size: usize,
) -> std::io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.set_write_timeout(Some(Duration::from_secs(30)))?;
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/octet-stream\r\n\
         Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n"
    );
    write_all_looping(&mut stream, head.as_bytes())?;
    let mut buf = vec![0u8; chunk_size.max(1)];
    loop {
        let n = match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        write_all_looping(&mut stream, format!("{n:x}\r\n").as_bytes())?;
        write_all_looping(&mut stream, &buf[..n])?;
        write_all_looping(&mut stream, b"\r\n")?;
    }
    write_all_looping(&mut stream, b"0\r\n\r\n")?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<Response> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .or_else(|| text.split_once("\n\n"))
        .ok_or_else(|| bad("response has no header/body separator"))?;
    let status_line = head.lines().next().ok_or_else(|| bad("empty response"))?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let header = |name: &str| {
        head.lines().skip(1).find_map(|line| {
            let (k, v) = line.split_once(':')?;
            k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
        })
    };
    if let Some(expected) = header("content-length").and_then(|v| v.parse::<usize>().ok()) {
        if body.len() != expected {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "response truncated: got {} of {} body bytes",
                    body.len(),
                    expected
                ),
            ));
        }
    }
    let retry_after = header("retry-after").and_then(|v| v.parse().ok());
    Ok(Response {
        status,
        body: body.to_string(),
        retry_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let r = parse_response(
            b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 2\r\n\r\n{}",
        )
        .expect("parses");
        assert_eq!(r.status, 200);
        assert_eq!(r.body, "{}");
        assert!(r.is_ok());
        assert_eq!(r.retry_after, None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http at all").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\nx").is_err());
    }

    #[test]
    fn truncated_body_is_a_transport_error() {
        let r = parse_response(b"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\n{\"a\"");
        assert!(r.is_err(), "reset mid-body must not parse as success");
    }

    #[test]
    fn retry_after_header_is_parsed() {
        let r = parse_response(b"HTTP/1.1 429 Too Many Requests\r\nRetry-After: 7\r\n\r\n")
            .expect("parses");
        assert_eq!(r.retry_after, Some(7));
    }

    #[test]
    fn idempotency_is_method_and_path_aware() {
        assert!(is_idempotent("GET", "/metrics"));
        assert!(is_idempotent("POST", "/v1/profile"));
        assert!(is_idempotent("POST", "/v1/evaluate"));
        assert!(!is_idempotent("POST", "/admin/reset"));
        assert!(!is_idempotent("DELETE", "/v1/profile"));
    }

    #[test]
    fn jitter_schedule_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
            seed: 42,
        };
        let mut a = policy.base;
        let mut b = policy.base;
        for attempt in 0..5 {
            a = policy.next_sleep(a, attempt);
            b = policy.next_sleep(b, attempt);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a >= policy.base && a <= policy.cap);
        }
        let other = RetryPolicy { seed: 43, ..policy };
        let mut c = other.base;
        let mut differs = false;
        let mut d = policy.base;
        for attempt in 0..5 {
            c = other.next_sleep(c, attempt);
            d = policy.next_sleep(d, attempt);
            differs |= c != d;
        }
        assert!(differs, "different seeds decorrelate");
    }

    #[test]
    fn partial_writes_are_looped() {
        // A writer that accepts one byte at a time.
        struct OneByte(Vec<u8>);
        impl Write for OneByte {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                if buf.is_empty() {
                    return Ok(0);
                }
                self.0.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = OneByte(Vec::new());
        write_all_looping(&mut w, b"hello world").expect("writes fully");
        assert_eq!(w.0, b"hello world");
    }
}
