//! `gmap-serve` — a concurrent model-cloning service layer over the
//! G-MAP pipeline.
//!
//! This crate wraps the profile → clone → evaluate pipeline in a small,
//! dependency-free HTTP/1.1 JSON service built directly on [`std::net`]:
//!
//! | Route              | Purpose                                               |
//! |--------------------|-------------------------------------------------------|
//! | `POST /v1/profile` | Profile a named workload into an application model     |
//! | `POST /v1/clone`   | Generate (optionally miniaturized) proxy-stream stats  |
//! | `POST /v1/evaluate`| Run a hierarchy-config grid via the sweep engine       |
//! | `GET /healthz`     | Liveness probe                                         |
//! | `GET /metrics`     | Prometheus-style counters, gauges, latency quantiles   |
//!
//! Architecture (one module each):
//!
//! * [`http`] — single-request HTTP/1.1 framing with size limits.
//! * [`api`] — wire types; bodies are canonical compact JSON.
//! * [`jobs`] — bounded job queue: full ⇒ 429, shutdown drains fully.
//! * [`cache`] — content-addressed model store (memory + optional disk),
//!   keyed by the hash of the canonical workload spec.
//! * [`metrics`] — atomics + [`gmap_trace::LatencyHistogram`] registry.
//! * [`handlers`] — endpoint logic with cooperative cancellation.
//! * [`server`] — accept loop, worker pool, deadlines, graceful shutdown.
//! * [`client`] — the minimal client used by `gmap client` and tests.
//!
//! ```no_run
//! let handle = gmap_serve::start(gmap_serve::ServeConfig::default())
//!     .expect("bind ephemeral port");
//! let addr = handle.addr().to_string();
//! let resp = gmap_serve::client::post_json(
//!     &addr,
//!     "/v1/profile",
//!     r#"{"workload":"kmeans","scale":"tiny"}"#,
//! )
//! .expect("server reachable");
//! assert!(resp.is_ok());
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod handlers;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod server;

pub use server::{start, ServeConfig, ServerHandle, ServerState};
