//! `gmap-serve` — a concurrent model-cloning service layer over the
//! G-MAP pipeline.
//!
//! This crate wraps the profile → clone → evaluate pipeline in a small,
//! dependency-free HTTP/1.1 JSON service built directly on [`std::net`]:
//!
//! | Route              | Purpose                                               |
//! |--------------------|-------------------------------------------------------|
//! | `POST /v1/profile` | Profile a named workload into an application model     |
//! | `POST /v1/clone`   | Generate (optionally miniaturized) proxy-stream stats  |
//! | `POST /v1/evaluate`| Run a hierarchy-config grid via the sweep engine       |
//! | `POST /v1/ingest`  | Stream a raw trace (chunked) into a profiled model     |
//! | `POST /v1/replicate` | Internal: idempotent model push from a fleet peer    |
//! | `POST /v1/admin/drain` | Graceful decommission: stream models to successors |
//! | `GET /healthz`     | Liveness probe (advertises `draining` when set)        |
//! | `GET /metrics`     | Prometheus-style counters, gauges, latency quantiles   |
//!
//! Architecture (one module each):
//!
//! * [`http`] — keep-alive HTTP/1.1 framing with size limits and
//!   fine-grained error classification (idle vs mid-request timeouts);
//!   the head/body phases are split so `/v1/ingest` can stream chunked
//!   bodies without materializing them.
//! * [`api`] — wire types; bodies are canonical compact JSON.
//! * [`jobs`] — bounded job queue: full ⇒ 429, shutdown drains fully,
//!   panics contained and counted.
//! * [`cache`] — content-addressed model store, keyed by the hash of
//!   the canonical workload spec: bounded LRU memory tier + optional
//!   checksummed disk tier with corruption quarantine.
//! * [`metrics`] — atomics + [`gmap_trace::LatencyHistogram`] registry.
//! * [`handlers`] — endpoint logic with cooperative cancellation.
//! * [`server`] — accept loop, worker pool, deadlines, load shedding,
//!   graceful shutdown.
//! * [`client`] — the minimal client used by `gmap client` and tests,
//!   with an idempotent-only retry wrapper (backoff + jitter) and a
//!   peer-aware sharded client that fails over on transport errors.
//! * [`faults`] — deterministic seeded fault injection for chaos tests.
//! * [`shard`] — consistent-hash ring over the FNV-128 content-key
//!   space (128 virtual nodes per replica, minimal remapping on
//!   membership change).
//! * [`router`] — the `--route` mode: forwards pipeline requests to the
//!   owning replica on the connection thread, propagating the remaining
//!   deadline budget and failing over to ring successors.
//! * [`health`] — per-peer circuit breaker fed by passive request
//!   outcomes and an active `/healthz` prober; shared by the router,
//!   the sharded client, and the replication worker.
//! * [`replicate`] — RF-way successor replication over
//!   `POST /v1/replicate` with hinted handoff, read-repair, and the
//!   drain path behind `POST /v1/admin/drain`.
//!
//! ```no_run
//! let handle = gmap_serve::start(gmap_serve::ServeConfig::default())
//!     .expect("bind ephemeral port");
//! let addr = handle.addr().to_string();
//! let resp = gmap_serve::client::post_json(
//!     &addr,
//!     "/v1/profile",
//!     r#"{"workload":"kmeans","scale":"tiny"}"#,
//! )
//! .expect("server reachable");
//! assert!(resp.is_ok());
//! handle.shutdown();
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod cache;
pub mod client;
pub mod faults;
pub mod handlers;
pub mod health;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod replicate;
pub mod router;
pub mod server;
pub mod shard;

pub use server::{start, ServeConfig, ServerHandle, ServerState};
