//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The service speaks one shape of conversation: read a request head
//! (line + headers), read the body — `Content-Length` or
//! `Transfer-Encoding: chunked` — write a response, and — since the
//! resilience layer — *keep the connection* for the next request unless
//! either side asks to close. This module implements that shape from the
//! stdlib — no async runtime, no external HTTP crate — with hard limits
//! on header and body size so a misbehaving peer cannot balloon memory,
//! and with read errors classified finely enough for the server to pick
//! the right response (400 for malformed bytes, 408 for a mid-request
//! stall, 413 for an oversized body, silent close for an idle peer).
//!
//! The head and body phases are split ([`read_request_head`] +
//! [`BodyReader`]) so the streaming-ingest endpoint can consume an
//! arbitrarily large chunked body piece by piece without ever
//! materializing it; [`read_request`] composes the two phases back into
//! the materialized [`Request`] every other endpoint uses.

use std::io::{self, BufRead, Read, Write};

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body bytes (profiles are a few KB; grids are
/// smaller).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Maximum bytes accepted on the *streaming* ingest path. Far above
/// [`MAX_BODY_BYTES`] — the stream is profiled incrementally and never
/// materialized — but still bounded so a runaway peer cannot occupy a
/// connection thread forever.
pub const MAX_INGEST_BODY_BYTES: u64 = 1 << 30;
/// Longest accepted chunk-size line in a chunked body (hex digits plus
/// optional extensions).
const MAX_CHUNK_LINE_BYTES: usize = 256;

/// The head of an HTTP request: request line plus headers, body not yet
/// consumed.
#[derive(Debug, Clone)]
pub struct RequestHead {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
}

impl RequestHead {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.to_ascii_lowercase()
                .split(',')
                .any(|t| t.trim() == "close")
        })
    }

    /// The path with any query string stripped (`/v1/ingest?grid=2` →
    /// `/v1/ingest`), for routing.
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` or a chunked body
    /// was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Assembles a request from its already-read head and body.
    pub fn from_parts(head: RequestHead, body: Vec<u8>) -> Self {
        Request {
            method: head.method,
            path: head.path,
            headers: head.headers,
            body,
        }
    }

    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.to_ascii_lowercase()
                .split(',')
                .any(|t| t.trim() == "close")
        })
    }

    /// The body as UTF-8, or an error suitable for a 400 response.
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("request body is not UTF-8: {e}"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request.
    Eof,
    /// Transport-level failure other than a timeout.
    Io(io::Error),
    /// The read timed out; `mid_request` distinguishes a stalled sender
    /// (answer 408) from an idle keep-alive connection (close silently).
    Timeout {
        /// Whether any request bytes had been consumed before the stall.
        mid_request: bool,
    },
    /// The bytes did not form an acceptable request; the message is safe
    /// to echo in a 400 response.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] (answer 413).
    TooLarge(String),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads the request line and headers of one HTTP/1.1 request, leaving
/// the body unconsumed on `reader`.
///
/// # Errors
///
/// [`ReadError::Eof`] on a cleanly closed idle connection,
/// [`ReadError::Malformed`] for protocol violations (oversized head, bad
/// request line, bad header lines), [`ReadError::Timeout`] when the
/// transport timed out, and [`ReadError::Io`] for other transport
/// failures.
pub fn read_request_head<R: BufRead>(reader: &mut R) -> Result<RequestHead, ReadError> {
    let mut head = Vec::new();
    // Read up to the blank line terminating the header block.
    loop {
        let started = !head.is_empty();
        let mut line = Vec::new();
        let n = read_crlf_line(reader, &mut line, MAX_HEAD_BYTES - head.len(), started)?;
        if n == 0 && head.is_empty() {
            return Err(ReadError::Eof);
        }
        if line.is_empty() {
            break;
        }
        head.push(line);
        if head.iter().map(Vec::len).sum::<usize>() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("header block too large".into()));
        }
    }
    let request_line = head
        .first()
        .ok_or_else(|| ReadError::Malformed("empty request".into()))?;
    let request_line = String::from_utf8_lossy(request_line).into_owned();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::with_capacity(head.len().saturating_sub(1));
    for raw in &head[1..] {
        let text = String::from_utf8_lossy(raw);
        let Some((name, value)) = text.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {text:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(RequestHead {
        method,
        path,
        headers,
    })
}

/// How a request's body is framed on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BodyKind {
    /// Exactly this many bytes follow (`Content-Length`, possibly 0).
    Length(u64),
    /// `Transfer-Encoding: chunked` framing.
    Chunked,
}

/// Determines how the body following `head` is framed.
///
/// # Errors
///
/// [`ReadError::Malformed`] for an unsupported `Transfer-Encoding` or an
/// unparseable `Content-Length`.
pub fn body_kind(head: &RequestHead) -> Result<BodyKind, ReadError> {
    if let Some(te) = head.header("transfer-encoding") {
        if te
            .to_ascii_lowercase()
            .split(',')
            .any(|t| t.trim() == "chunked")
        {
            return Ok(BodyKind::Chunked);
        }
        return Err(ReadError::Malformed(format!(
            "unsupported Transfer-Encoding {te:?} (only chunked)"
        )));
    }
    let content_length = head
        .header("content-length")
        .map(|v| {
            v.parse::<u64>()
                .map_err(|e| ReadError::Malformed(format!("bad Content-Length {v:?}: {e}")))
        })
        .transpose()?
        .unwrap_or(0);
    Ok(BodyKind::Length(content_length))
}

/// Incremental body reader: yields the body in caller-sized pieces
/// without ever holding more than one piece, decoding chunked framing
/// transparently. The streaming-ingest endpoint drives this directly;
/// [`read_request`] drives it to materialize small bodies.
#[derive(Debug)]
pub struct BodyReader<'a, R: BufRead> {
    reader: &'a mut R,
    state: BodyState,
    consumed: u64,
    limit: u64,
}

#[derive(Debug)]
enum BodyState {
    /// Plain body: this many bytes left to read.
    Length(u64),
    /// Chunked body: bytes left in the current chunk (0 = a size line is
    /// due next).
    Chunk(u64),
    /// All body bytes (and, for chunked, the trailer) consumed.
    Done,
}

impl<'a, R: BufRead> BodyReader<'a, R> {
    /// Starts reading a body of the given kind, enforcing `limit` total
    /// bytes.
    ///
    /// # Errors
    ///
    /// [`ReadError::TooLarge`] immediately when a declared
    /// `Content-Length` exceeds `limit`.
    pub fn new(reader: &'a mut R, kind: BodyKind, limit: u64) -> Result<Self, ReadError> {
        let state = match kind {
            BodyKind::Length(0) => BodyState::Done,
            BodyKind::Length(n) if n > limit => {
                return Err(ReadError::TooLarge(format!(
                    "body of {n} bytes exceeds the {limit}-byte limit"
                )));
            }
            BodyKind::Length(n) => BodyState::Length(n),
            BodyKind::Chunked => BodyState::Chunk(0),
        };
        Ok(BodyReader {
            reader,
            state,
            consumed: 0,
            limit,
        })
    }

    /// Total body bytes yielded so far (excluding chunk framing).
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Reads the next piece of the body into `buf`. Returns 0 exactly
    /// once the body (and any chunked trailer) is fully consumed, so the
    /// connection is positioned at the next request.
    ///
    /// # Errors
    ///
    /// [`ReadError::Malformed`] for truncated bodies and bad chunk
    /// framing, [`ReadError::TooLarge`] when the running total passes the
    /// limit, [`ReadError::Timeout`]/[`ReadError::Io`] for transport
    /// failures.
    pub fn next_piece(&mut self, buf: &mut [u8]) -> Result<usize, ReadError> {
        loop {
            match self.state {
                BodyState::Done => return Ok(0),
                BodyState::Length(remaining) => {
                    let want = buf
                        .len()
                        .min(usize::try_from(remaining).unwrap_or(usize::MAX));
                    let n = self.read_some(&mut buf[..want])?;
                    if n == 0 {
                        return Err(ReadError::Malformed(
                            "request body truncated before Content-Length bytes".into(),
                        ));
                    }
                    self.state = match remaining - n as u64 {
                        0 => BodyState::Done,
                        left => BodyState::Length(left),
                    };
                    return self.account(n);
                }
                BodyState::Chunk(0) => {
                    let size = self.read_chunk_size()?;
                    if size == 0 {
                        self.read_trailer()?;
                        self.state = BodyState::Done;
                        return Ok(0);
                    }
                    self.state = BodyState::Chunk(size);
                }
                BodyState::Chunk(remaining) => {
                    let want = buf
                        .len()
                        .min(usize::try_from(remaining).unwrap_or(usize::MAX));
                    let n = self.read_some(&mut buf[..want])?;
                    if n == 0 {
                        return Err(ReadError::Malformed(
                            "request body truncated mid-chunk".into(),
                        ));
                    }
                    if remaining == n as u64 {
                        // Chunk data is followed by its own CRLF.
                        let mut terminator = Vec::new();
                        read_crlf_line(self.reader, &mut terminator, 2, true)?;
                        if !terminator.is_empty() {
                            return Err(ReadError::Malformed(
                                "missing CRLF after chunk data".into(),
                            ));
                        }
                        self.state = BodyState::Chunk(0);
                    } else {
                        self.state = BodyState::Chunk(remaining - n as u64);
                    }
                    return self.account(n);
                }
            }
        }
    }

    fn account(&mut self, n: usize) -> Result<usize, ReadError> {
        self.consumed += n as u64;
        if self.consumed > self.limit {
            return Err(ReadError::TooLarge(format!(
                "body exceeds the {}-byte limit",
                self.limit
            )));
        }
        Ok(n)
    }

    fn read_some(&mut self, buf: &mut [u8]) -> Result<usize, ReadError> {
        loop {
            match self.reader.read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(classify_io(e, true)),
            }
        }
    }

    fn read_chunk_size(&mut self) -> Result<u64, ReadError> {
        let mut line = Vec::new();
        let n = read_crlf_line(self.reader, &mut line, MAX_CHUNK_LINE_BYTES, true)?;
        if n == 0 {
            return Err(ReadError::Malformed(
                "request body truncated before chunk size".into(),
            ));
        }
        let text = String::from_utf8_lossy(&line);
        // Chunk extensions (";name=value") are tolerated and ignored.
        let digits = text.split(';').next().unwrap_or("").trim();
        u64::from_str_radix(digits, 16)
            .map_err(|e| ReadError::Malformed(format!("bad chunk size {digits:?}: {e}")))
    }

    /// Consumes trailer lines after the final 0-size chunk, up to and
    /// including the blank terminator line.
    fn read_trailer(&mut self) -> Result<(), ReadError> {
        loop {
            let mut line = Vec::new();
            let n = read_crlf_line(self.reader, &mut line, MAX_HEAD_BYTES, true)?;
            if n == 0 {
                return Err(ReadError::Malformed(
                    "request body truncated in chunked trailer".into(),
                ));
            }
            if line.is_empty() {
                return Ok(());
            }
        }
    }
}

/// Materializes the body following `head`, bounded by [`MAX_BODY_BYTES`].
///
/// # Errors
///
/// See [`BodyReader::next_piece`]; a declared or running length over the
/// limit is [`ReadError::TooLarge`].
pub fn read_body<R: BufRead>(reader: &mut R, head: &RequestHead) -> Result<Vec<u8>, ReadError> {
    let kind = body_kind(head)?;
    let mut body_reader = BodyReader::new(reader, kind, MAX_BODY_BYTES as u64)?;
    let mut body = Vec::new();
    let mut buf = [0u8; 8 * 1024];
    loop {
        match body_reader.next_piece(&mut buf)? {
            0 => return Ok(body),
            n => body.extend_from_slice(&buf[..n]),
        }
    }
}

/// Reads one HTTP/1.1 request from `reader`, materializing the body.
///
/// # Errors
///
/// [`ReadError::Eof`] on a cleanly closed idle connection,
/// [`ReadError::Malformed`] for protocol violations (oversized head,
/// missing/bad `Content-Length`, bad request line, bad chunk framing, a
/// body cut short by the peer), [`ReadError::TooLarge`] for bodies over
/// the limit, [`ReadError::Timeout`] when the transport timed out, and
/// [`ReadError::Io`] for other transport failures.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let head = read_request_head(reader)?;
    let body = read_body(reader, &head)?;
    Ok(Request::from_parts(head, body))
}

/// Classifies a transport error: timeouts become [`ReadError::Timeout`]
/// (with the mid-request flag), everything else stays [`ReadError::Io`].
fn classify_io(e: io::Error, mid_request: bool) -> ReadError {
    if is_timeout(&e) {
        ReadError::Timeout { mid_request }
    } else {
        ReadError::Io(e)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line into `out`, without the
/// terminator. Returns the number of bytes consumed (0 on EOF).
/// `mid_request` labels a timeout here as stalling an in-progress
/// request (vs. an idle connection).
fn read_crlf_line<R: BufRead>(
    reader: &mut R,
    out: &mut Vec<u8>,
    limit: usize,
    mid_request: bool,
) -> Result<usize, ReadError> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(limit as u64 + 2)
        .read_until(b'\n', &mut raw)
        .map_err(|e| classify_io(e, mid_request))?;
    if n > limit + 1 {
        return Err(ReadError::Malformed("line too long".into()));
    }
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *out = raw;
    Ok(n)
}

/// Canonical reason phrase for the status codes the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Connection/header options for one response.
#[derive(Debug, Clone, Copy)]
pub struct ResponseOpts {
    /// Emit `Connection: close` (and actually close afterwards) instead
    /// of `Connection: keep-alive`.
    pub close: bool,
    /// Attach a `Retry-After: <seconds>` header (for 429/503 shedding).
    pub retry_after: Option<u64>,
}

impl ResponseOpts {
    /// The one-shot default: close after responding, no retry hint.
    pub fn closing() -> Self {
        ResponseOpts {
            close: true,
            retry_after: None,
        }
    }
}

/// Writes one complete `Connection: close` response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_opts(writer, status, content_type, body, ResponseOpts::closing())
}

/// Writes one complete response with explicit connection semantics.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response_opts<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    opts: ResponseOpts,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
    )?;
    if let Some(secs) = opts.retry_after {
        write!(writer, "Retry-After: {secs}\r\n")?;
    }
    write!(
        writer,
        "Connection: {}\r\n\r\n{}",
        if opts.close { "close" } else { "keep-alive" },
        body
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("valid");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse(b"POST /v1/profile HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").expect("valid");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
        assert_eq!(r.body_utf8().expect("utf8"), "{\"a\"");
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let r = parse(b"GET / HTTP/1.1\nHost: y\n\n").expect("valid");
        assert_eq!(r.header("host"), Some("y"));
    }

    #[test]
    fn eof_and_malformed_are_distinguished() {
        assert!(matches!(parse(b""), Err(ReadError::Eof)));
        assert!(matches!(
            parse(b"GET\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/99\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(head.as_bytes()),
            Err(ReadError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn connection_close_header_is_detected() {
        let r = parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").expect("valid");
        assert!(r.wants_close());
        let r = parse(b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").expect("valid");
        assert!(r.wants_close());
        let r = parse(b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").expect("valid");
        assert!(!r.wants_close());
        let r = parse(b"GET / HTTP/1.1\r\n\r\n").expect("valid");
        assert!(!r.wants_close());
    }

    #[test]
    fn chunked_body_is_decoded_and_materialized() {
        let r = parse(
            b"POST /v1/ingest HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
        )
        .expect("valid chunked request");
        assert_eq!(r.body, b"Wikipedia");
    }

    #[test]
    fn chunked_extensions_and_trailers_are_tolerated() {
        let r = parse(
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              3;ext=1\r\nabc\r\n0\r\nX-Trailer: t\r\n\r\n",
        )
        .expect("valid");
        assert_eq!(r.body, b"abc");
    }

    #[test]
    fn chunked_keeps_the_connection_positioned_for_the_next_request() {
        let bytes: &[u8] = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              2\r\nhi\r\n0\r\n\r\n\
              GET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = BufReader::new(bytes);
        let first = read_request(&mut reader).expect("chunked request");
        assert_eq!(first.body, b"hi");
        let second = read_request(&mut reader).expect("next request parses");
        assert_eq!(second.path, "/healthz");
    }

    #[test]
    fn bad_chunk_framing_is_malformed() {
        for bytes in [
            // Non-hex size line.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\nzz\r\nab\r\n0\r\n\r\n"[..],
            // Missing CRLF after chunk data.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nabXX\r\n0\r\n\r\n"[..],
            // Truncated mid-chunk.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n8\r\nab"[..],
            // Truncated before the terminal chunk.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n2\r\nab\r\n"[..],
            // Unsupported encoding.
            &b"POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n"[..],
        ] {
            assert!(
                matches!(parse(bytes), Err(ReadError::Malformed(_))),
                "expected malformed for {:?}",
                String::from_utf8_lossy(bytes)
            );
        }
    }

    #[test]
    fn chunked_body_over_the_limit_is_too_large() {
        // One declared chunk larger than the materialized-body limit; the
        // limit trips as soon as the running total passes it, long before
        // the declared bytes arrive.
        let mut bytes = format!(
            "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n{:x}\r\n",
            MAX_BODY_BYTES + 2
        )
        .into_bytes();
        bytes.extend_from_slice(&vec![b'x'; MAX_BODY_BYTES + 2]);
        bytes.extend_from_slice(b"\r\n0\r\n\r\n");
        assert!(matches!(parse(&bytes), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn body_reader_streams_pieces_without_materializing() {
        let bytes: &[u8] = b"5\r\nhello\r\n6\r\n world\r\n0\r\n\r\n";
        let mut reader = BufReader::new(bytes);
        let mut body = BodyReader::new(&mut reader, BodyKind::Chunked, 1024).expect("under limit");
        let mut buf = [0u8; 4];
        let mut collected = Vec::new();
        loop {
            match body.next_piece(&mut buf).expect("well-formed") {
                0 => break,
                n => collected.extend_from_slice(&buf[..n]),
            }
        }
        assert_eq!(collected, b"hello world");
        assert_eq!(body.consumed(), 11);
    }

    #[test]
    fn route_path_strips_query_strings() {
        let head = RequestHead {
            method: "POST".into(),
            path: "/v1/ingest?grid=2&block=64".into(),
            headers: vec![],
        };
        assert_eq!(head.route_path(), "/v1/ingest");
        let plain = RequestHead {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: vec![],
        };
        assert_eq!(plain.route_path(), "/healthz");
    }

    #[test]
    fn timeouts_are_classified_by_phase() {
        let idle = classify_io(io::Error::from(io::ErrorKind::WouldBlock), false);
        assert!(matches!(idle, ReadError::Timeout { mid_request: false }));
        let mid = classify_io(io::Error::from(io::ErrorKind::TimedOut), true);
        assert!(matches!(mid, ReadError::Timeout { mid_request: true }));
        let other = classify_io(io::Error::from(io::ErrorKind::ConnectionReset), true);
        assert!(matches!(other, ReadError::Io(_)));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            "{\"error\":\"queue full\"}",
        )
        .expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn keep_alive_response_carries_retry_after() {
        let mut out = Vec::new();
        write_response_opts(
            &mut out,
            503,
            "application/json",
            "{}",
            ResponseOpts {
                close: false,
                retry_after: Some(2),
            },
        )
        .expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
    }
}
