//! Minimal HTTP/1.1 framing over `std::net`.
//!
//! The service speaks one shape of conversation: read a request (line +
//! headers + `Content-Length` body), write a response, and — since the
//! resilience layer — *keep the connection* for the next request unless
//! either side asks to close. This module implements that shape from the
//! stdlib — no async runtime, no external HTTP crate — with hard limits
//! on header and body size so a misbehaving peer cannot balloon memory,
//! and with read errors classified finely enough for the server to pick
//! the right response (400 for malformed bytes, 408 for a mid-request
//! stall, 413 for an oversized body, silent close for an idle peer).

use std::io::{self, BufRead, Read, Write};

/// Maximum accepted request-line + header bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request body bytes (profiles are a few KB; grids are
/// smaller).
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// Request target path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.to_ascii_lowercase()
                .split(',')
                .any(|t| t.trim() == "close")
        })
    }

    /// The body as UTF-8, or an error suitable for a 400 response.
    ///
    /// # Errors
    ///
    /// Returns a message when the body is not valid UTF-8.
    pub fn body_utf8(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("request body is not UTF-8: {e}"))
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request.
    Eof,
    /// Transport-level failure other than a timeout.
    Io(io::Error),
    /// The read timed out; `mid_request` distinguishes a stalled sender
    /// (answer 408) from an idle keep-alive connection (close silently).
    Timeout {
        /// Whether any request bytes had been consumed before the stall.
        mid_request: bool,
    },
    /// The bytes did not form an acceptable request; the message is safe
    /// to echo in a 400 response.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] (answer 413).
    TooLarge(String),
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one HTTP/1.1 request from `reader`.
///
/// # Errors
///
/// [`ReadError::Eof`] on a cleanly closed idle connection,
/// [`ReadError::Malformed`] for protocol violations (oversized head,
/// missing/bad `Content-Length`, bad request line, a body cut short by
/// the peer), [`ReadError::TooLarge`] for bodies over the limit,
/// [`ReadError::Timeout`] when the transport timed out, and
/// [`ReadError::Io`] for other transport failures.
pub fn read_request<R: BufRead>(reader: &mut R) -> Result<Request, ReadError> {
    let mut head = Vec::new();
    // Read up to the blank line terminating the header block.
    loop {
        let started = !head.is_empty();
        let mut line = Vec::new();
        let n = read_crlf_line(reader, &mut line, MAX_HEAD_BYTES - head.len(), started)?;
        if n == 0 && head.is_empty() {
            return Err(ReadError::Eof);
        }
        if line.is_empty() {
            break;
        }
        head.push(line);
        if head.iter().map(Vec::len).sum::<usize>() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("header block too large".into()));
        }
    }
    let request_line = head
        .first()
        .ok_or_else(|| ReadError::Malformed("empty request".into()))?;
    let request_line = String::from_utf8_lossy(request_line).into_owned();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing method".into()))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("missing path".into()))?
        .to_string();
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported version {version:?}"
        )));
    }

    let mut headers = Vec::with_capacity(head.len().saturating_sub(1));
    for raw in &head[1..] {
        let text = String::from_utf8_lossy(raw);
        let Some((name, value)) = text.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line {text:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|e| ReadError::Malformed(format!("bad Content-Length {v:?}: {e}")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(format!(
            "body of {content_length} bytes exceeds the {MAX_BODY_BYTES}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            // The peer promised Content-Length bytes and closed early.
            ReadError::Malformed("request body truncated before Content-Length bytes".into())
        } else {
            classify_io(e, true)
        }
    })?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Classifies a transport error: timeouts become [`ReadError::Timeout`]
/// (with the mid-request flag), everything else stays [`ReadError::Io`].
fn classify_io(e: io::Error, mid_request: bool) -> ReadError {
    if is_timeout(&e) {
        ReadError::Timeout { mid_request }
    } else {
        ReadError::Io(e)
    }
}

/// Reads one CRLF- (or bare-LF-) terminated line into `out`, without the
/// terminator. Returns the number of bytes consumed (0 on EOF).
/// `mid_request` labels a timeout here as stalling an in-progress
/// request (vs. an idle connection).
fn read_crlf_line<R: BufRead>(
    reader: &mut R,
    out: &mut Vec<u8>,
    limit: usize,
    mid_request: bool,
) -> Result<usize, ReadError> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(limit as u64 + 2)
        .read_until(b'\n', &mut raw)
        .map_err(|e| classify_io(e, mid_request))?;
    if n > limit + 1 {
        return Err(ReadError::Malformed("line too long".into()));
    }
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *out = raw;
    Ok(n)
}

/// Canonical reason phrase for the status codes the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Connection/header options for one response.
#[derive(Debug, Clone, Copy)]
pub struct ResponseOpts {
    /// Emit `Connection: close` (and actually close afterwards) instead
    /// of `Connection: keep-alive`.
    pub close: bool,
    /// Attach a `Retry-After: <seconds>` header (for 429/503 shedding).
    pub retry_after: Option<u64>,
}

impl ResponseOpts {
    /// The one-shot default: close after responding, no retry hint.
    pub fn closing() -> Self {
        ResponseOpts {
            close: true,
            retry_after: None,
        }
    }
}

/// Writes one complete `Connection: close` response.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_opts(writer, status, content_type, body, ResponseOpts::closing())
}

/// Writes one complete response with explicit connection semantics.
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response_opts<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    opts: ResponseOpts,
) -> io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
    )?;
    if let Some(secs) = opts.retry_after {
        write!(writer, "Retry-After: {secs}\r\n")?;
    }
    write!(
        writer,
        "Connection: {}\r\n\r\n{}",
        if opts.close { "close" } else { "keep-alive" },
        body
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(bytes))
    }

    #[test]
    fn parses_get_without_body() {
        let r = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("valid");
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/healthz");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r =
            parse(b"POST /v1/profile HTTP/1.1\r\nContent-Length: 4\r\n\r\n{\"a\"").expect("valid");
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\"");
        assert_eq!(r.body_utf8().expect("utf8"), "{\"a\"");
    }

    #[test]
    fn tolerates_bare_lf_lines() {
        let r = parse(b"GET / HTTP/1.1\nHost: y\n\n").expect("valid");
        assert_eq!(r.header("host"), Some("y"));
    }

    #[test]
    fn eof_and_malformed_are_distinguished() {
        assert!(matches!(parse(b""), Err(ReadError::Eof)));
        assert!(matches!(
            parse(b"GET\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/99\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: zebra\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_up_front() {
        let head = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            parse(head.as_bytes()),
            Err(ReadError::TooLarge(_))
        ));
    }

    #[test]
    fn truncated_body_is_malformed() {
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn connection_close_header_is_detected() {
        let r = parse(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n").expect("valid");
        assert!(r.wants_close());
        let r = parse(b"GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n").expect("valid");
        assert!(r.wants_close());
        let r = parse(b"GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").expect("valid");
        assert!(!r.wants_close());
        let r = parse(b"GET / HTTP/1.1\r\n\r\n").expect("valid");
        assert!(!r.wants_close());
    }

    #[test]
    fn timeouts_are_classified_by_phase() {
        let idle = classify_io(io::Error::from(io::ErrorKind::WouldBlock), false);
        assert!(matches!(idle, ReadError::Timeout { mid_request: false }));
        let mid = classify_io(io::Error::from(io::ErrorKind::TimedOut), true);
        assert!(matches!(mid, ReadError::Timeout { mid_request: true }));
        let other = classify_io(io::Error::from(io::ErrorKind::ConnectionReset), true);
        assert!(matches!(other, ReadError::Io(_)));
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            429,
            "application/json",
            "{\"error\":\"queue full\"}",
        )
        .expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Content-Length: 22\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }

    #[test]
    fn keep_alive_response_carries_retry_after() {
        let mut out = Vec::new();
        write_response_opts(
            &mut out,
            503,
            "application/json",
            "{}",
            ResponseOpts {
                close: false,
                retry_after: Some(2),
            },
        )
        .expect("write");
        let text = String::from_utf8(out).expect("ascii");
        assert!(text.contains("Retry-After: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
    }
}
