//! The HTTP server: accept loop, keep-alive request routing, deadline
//! enforcement, load shedding, and drain-first graceful shutdown.
//!
//! Threading model: one accept thread polls a non-blocking listener; each
//! accepted connection gets a connection thread that serves up to
//! [`ServeConfig::keepalive_max`] requests over one socket, and — for the
//! pipeline endpoints — submits a job to the bounded [`JobQueue`] and
//! waits on a channel with a deadline. A fixed worker pool executes the
//! jobs. `/healthz` and `/metrics` are answered directly on the
//! connection thread so the service stays observable even when every
//! worker is busy.
//!
//! Resilience properties (see DESIGN.md "Resilience"):
//! - idle peers are closed silently after `idle_timeout`; a peer that
//!   stalls *mid-request* gets a 408 and a close;
//! - malformed or oversized input downgrades the connection to
//!   `Connection: close` after the error response;
//! - jobs whose deadline expired while still queued are shed (504, the
//!   handler never runs);
//! - 429/503 responses carry `Retry-After`;
//! - a panicking handler is contained by the worker pool and mapped to a
//!   structured 500 for the requester;
//! - when a [`crate::faults`] spec is configured, the injector is armed
//!   here and threaded through the cache, the request reader, the worker
//!   path, and the response writer.
//!
//! Shutdown ordering guarantees that no *accepted* request is dropped:
//! stop accepting → wait for connection threads (each waits for its job)
//! → stop the queue → drain remaining jobs → join workers.

use crate::api::{self, ApiError};
use crate::cache::{ModelStore, DEFAULT_MEM_CAPACITY};
use crate::faults::{FaultInjector, FaultSpec, TruncatedReader};
use crate::handlers;
use crate::health::{self, PeerHealth, ProbeHandle};
use crate::http::{self, ReadError, Request, RequestHead, ResponseOpts};
use crate::jobs::{JobQueue, SubmitError};
use crate::metrics::{Endpoint, Metrics, RuntimeStats};
use crate::replicate::{self, ReplicationState, ReplicationWorker};
use crate::router::Router;
use gmap_core::cachekey::canonical_json;
use gmap_gpu::hierarchy::LaunchConfig;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

/// Seconds advertised in `Retry-After` on transient-error responses.
const RETRY_AFTER_SECS: u64 = 1;

/// Default replication factor in fleet mode: the owner plus one ring
/// successor.
pub const DEFAULT_REPLICATION_FACTOR: usize = 2;

/// Default cadence of the active health prober (also the replication
/// worker's hint-replay tick).
pub const DEFAULT_PROBE_INTERVAL: Duration = Duration::from_millis(500);

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address; port 0 picks an ephemeral port.
    pub listen: String,
    /// Worker threads executing pipeline jobs.
    pub workers: usize,
    /// Maximum number of *pending* jobs before submissions get 429.
    pub queue_capacity: usize,
    /// Per-request deadline; expired requests get 504 and their job is
    /// cooperatively cancelled (or shed before executing).
    pub deadline: Duration,
    /// Optional on-disk tier for the model cache.
    pub cache_dir: Option<PathBuf>,
    /// Memory-tier bound of the model cache (LRU beyond this).
    pub cache_capacity: usize,
    /// Requests served per connection before it is closed.
    pub keepalive_max: usize,
    /// How long a peer may stall *mid-request* before getting 408.
    pub read_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before being closed silently.
    pub idle_timeout: Duration,
    /// Deterministic fault-injection spec (`None` in production).
    pub faults: Option<FaultSpec>,
    /// Router mode: forward pipeline requests to these replica
    /// addresses by consistent-hash shard instead of serving them
    /// locally (`None` = normal replica).
    pub route: Option<Vec<String>>,
    /// Replica-fleet membership (including this server's own
    /// [`ServeConfig::advertise`] address): enables successor
    /// replication and hinted handoff (`None` = standalone replica).
    pub fleet: Option<Vec<String>>,
    /// The address this server is known by inside the fleet; defaults
    /// to the bound listen address. Must be a member of `fleet`.
    pub advertise: Option<String>,
    /// Replica-set size per key in fleet mode (owner + RF−1 ring
    /// successors).
    pub replication_factor: usize,
    /// Cadence of active `/healthz` probes toward peers (router or
    /// fleet mode); also paces hint replay.
    pub probe_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_secs(60),
            cache_dir: None,
            cache_capacity: DEFAULT_MEM_CAPACITY,
            keepalive_max: 100,
            read_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(30),
            faults: None,
            route: None,
            fleet: None,
            advertise: None,
            replication_factor: DEFAULT_REPLICATION_FACTOR,
            probe_interval: DEFAULT_PROBE_INTERVAL,
        }
    }
}

/// Shared server state reachable from every thread.
pub struct ServerState {
    /// Bounded pipeline job queue.
    pub queue: JobQueue,
    /// Content-addressed model cache (shared with the replication
    /// worker in fleet mode).
    pub store: Arc<ModelStore>,
    /// Metrics registry behind `/metrics`.
    pub metrics: Metrics,
    deadline: Duration,
    keepalive_max: usize,
    read_timeout: Duration,
    idle_timeout: Duration,
    faults: Option<Arc<FaultInjector>>,
    router: Option<Router>,
    health: Arc<PeerHealth>,
    replication: Option<Arc<ReplicationState>>,
    draining: AtomicBool,
    active_connections: AtomicUsize,
}

impl ServerState {
    /// The armed fault injector, when a fault spec is configured.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// The router, when this server runs in `--route` mode.
    pub fn router(&self) -> Option<&Router> {
        self.router.as_ref()
    }

    /// The shared peer-health registry (empty outside router/fleet
    /// mode).
    pub fn health(&self) -> &Arc<PeerHealth> {
        &self.health
    }

    /// The replication state, when this server runs in `--fleet` mode.
    pub fn replication(&self) -> Option<&Arc<ReplicationState>> {
        self.replication.as_ref()
    }

    /// Whether `/v1/admin/drain` has flipped this server to draining.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Samples the point-in-time values rendered alongside the counters.
    fn runtime_stats(&self) -> RuntimeStats {
        let repl = self.replication.as_deref();
        RuntimeStats {
            queue_depth: self.queue.depth(),
            jobs_in_flight: self.queue.in_flight(),
            models_cached: self.store.len(),
            cache_capacity: self.store.capacity(),
            active_connections: self.active_connections.load(Ordering::SeqCst),
            cache_evictions: self.store.evictions(),
            cache_quarantined: self.store.quarantined(),
            worker_panics: self.queue.panics(),
            faults_injected: self.faults.as_ref().map_or(0, |f| f.injected_total()),
            peer_ejections: self.health.ejections(),
            peer_recoveries: self.health.recoveries(),
            replication_sent: repl.map_or(0, ReplicationState::sent),
            replication_failed: repl.map_or(0, ReplicationState::failed),
            replication_dropped: repl.map_or(0, ReplicationState::dropped),
            hints_queued: repl.map_or(0, ReplicationState::hints_queued),
            hints_replayed: repl.map_or(0, ReplicationState::hints_replayed),
            read_repairs: repl.map_or(0, ReplicationState::read_repairs),
            draining: self.is_draining(),
            peer_states: self.health.snapshot(),
        }
    }
}

/// A running server; dropping the handle does *not* stop it — call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    state: Arc<ServerState>,
    accept_thread: thread::JoinHandle<()>,
    worker_threads: Vec<thread::JoinHandle<()>>,
    prober: Option<ProbeHandle>,
    repl_worker: Option<ReplicationWorker>,
}

/// Binds the listener and starts the accept loop and worker pool.
///
/// # Errors
///
/// Fails if the listen address cannot be bound or the cache directory
/// cannot be created.
pub fn start(config: ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let faults = config.faults.clone().map(|spec| {
        let injector = Arc::new(FaultInjector::new(spec));
        injector.set_armed(true);
        injector
    });
    let invalid = |msg: String| std::io::Error::new(std::io::ErrorKind::InvalidInput, msg);
    if config.route.is_some() && config.fleet.is_some() {
        return Err(invalid(
            "a server is either a router (--route) or a fleet replica (--fleet), not both".into(),
        ));
    }
    let probe_interval = config.probe_interval.max(Duration::from_millis(50));
    // The health registry tracks route peers in router mode and fleet
    // members in replica mode; otherwise it is empty and every lookup
    // degrades to "available".
    let health_peers: &[String] = config
        .route
        .as_deref()
        .or(config.fleet.as_deref())
        .unwrap_or(&[]);
    let health = Arc::new(PeerHealth::new(health_peers, probe_interval));
    let router = match &config.route {
        Some(peers) if peers.is_empty() => {
            return Err(invalid(
                "router mode needs at least one replica address".into(),
            ))
        }
        Some(peers) => Some(Router::new(peers, Arc::clone(&health))),
        None => None,
    };
    let metrics = match &config.route {
        Some(peers) => Metrics::with_route(peers),
        None => Metrics::new(),
    };
    let store = Arc::new(ModelStore::with_config(
        config.cache_dir.clone(),
        config.cache_capacity,
        faults.clone(),
    )?);
    let advertise = config.advertise.clone().unwrap_or_else(|| addr.to_string());
    let (replication, repl_worker) = match &config.fleet {
        Some(fleet) if fleet.len() < 2 => {
            return Err(invalid(
                "fleet mode needs at least two replica addresses".into(),
            ))
        }
        Some(fleet) if !fleet.contains(&advertise) => {
            return Err(invalid(format!(
                "advertised address {advertise} is not a member of the fleet"
            )))
        }
        Some(fleet) => {
            let (state, worker) = replicate::spawn(
                fleet,
                &advertise,
                config.replication_factor,
                Arc::clone(&store),
                Arc::clone(&health),
                faults.clone(),
                probe_interval,
            );
            (Some(state), Some(worker))
        }
        None => (None, None),
    };
    // Active probing: a router probes its replicas, a fleet member
    // probes every peer but itself.
    let prober = if health.peers().is_empty() {
        None
    } else {
        let skip_self = config.fleet.is_some().then(|| advertise.clone());
        Some(health::spawn_prober(
            Arc::clone(&health),
            probe_interval,
            skip_self,
        ))
    };
    let state = Arc::new(ServerState {
        queue: JobQueue::new(config.queue_capacity),
        store,
        metrics,
        deadline: config.deadline,
        keepalive_max: config.keepalive_max.max(1),
        read_timeout: config.read_timeout,
        idle_timeout: config.idle_timeout,
        faults,
        router,
        health,
        replication,
        draining: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
    });
    let worker_threads = (0..config.workers.max(1))
        .map(|i| {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name(format!("gmap-serve-worker-{i}"))
                .spawn(move || state.queue.worker_loop())
                .expect("spawn worker thread")
        })
        .collect();
    let stop = Arc::new(AtomicBool::new(false));
    let accept_thread = {
        let state = Arc::clone(&state);
        let stop = Arc::clone(&stop);
        thread::Builder::new()
            .name("gmap-serve-accept".into())
            .spawn(move || accept_loop(&listener, &state, &stop))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        stop,
        state,
        accept_thread,
        worker_threads,
        prober,
        repl_worker,
    })
}

impl ServerHandle {
    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, for tests and the CLI.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Graceful shutdown: stop accepting, let in-flight connections
    /// finish (each waits on its job), drain the queue, join the pool.
    /// Every request accepted before the call is answered.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        self.accept_thread.join().expect("accept thread exits");
        while self.state.active_connections.load(Ordering::SeqCst) > 0 {
            thread::sleep(Duration::from_millis(2));
        }
        // Background availability machinery stops only after the last
        // connection finished, so late stores still enqueue; remaining
        // queued replication work is best-effort by design.
        if let Some(prober) = self.prober {
            prober.stop();
        }
        if let Some(worker) = self.repl_worker {
            worker.stop();
        }
        self.state.queue.shutdown();
        self.state.queue.wait_drained();
        for w in self.worker_threads {
            w.join().expect("worker thread exits");
        }
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>, stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                state.active_connections.fetch_add(1, Ordering::SeqCst);
                let conn_state = Arc::clone(state);
                let spawned =
                    thread::Builder::new()
                        .name("gmap-serve-conn".into())
                        .spawn(move || {
                            handle_connection(stream, &conn_state);
                            conn_state.active_connections.fetch_sub(1, Ordering::SeqCst);
                        });
                if spawned.is_err() {
                    // Could not spawn: undo the count; the stream drops
                    // and the peer sees a reset rather than a hang.
                    state.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves one connection: up to `keepalive_max` requests over the same
/// socket. Connection threads do the cheap work (parse, route, wait) and
/// leave pipeline execution to the worker pool.
///
/// Timeout policy: between requests the socket runs under `idle_timeout`
/// and an expiry closes the connection silently (the peer simply went
/// quiet); once the request line has arrived the socket runs under
/// `read_timeout` and a stall is answered with 408 before closing.
/// Malformed or oversized input always downgrades to `Connection: close`.
fn handle_connection(mut stream: TcpStream, state: &Arc<ServerState>) {
    // A `trunc_body` fault cuts the inbound byte stream for this whole
    // connection, simulating a peer that dies mid-send.
    let trunc_budget = state.faults.as_ref().and_then(|f| f.truncate_after());
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(TruncatedReader::new(read_half, trunc_budget));
    let mut served = 0usize;
    while served < state.keepalive_max {
        // Idle phase: wait for the first byte of the next request. The
        // read timeout is set on `stream`, which shares the socket with
        // the reader's clone.
        if stream.set_read_timeout(Some(state.idle_timeout)).is_err() {
            return;
        }
        match reader.fill_buf() {
            Ok([]) => return, // peer closed cleanly
            Ok(_) => {}
            Err(_) => return, // idle timeout or transport error
        }
        let _ = stream.set_read_timeout(Some(state.read_timeout));
        let head = match http::read_request_head(&mut reader) {
            Ok(h) => h,
            Err(ReadError::Eof)
            | Err(ReadError::Io(_))
            | Err(ReadError::Timeout { mid_request: false }) => return,
            Err(ReadError::Timeout { mid_request: true }) => {
                let e = ApiError::new(408, "timed out reading request");
                write_reply(&mut stream, state, 408, "application/json", &e.body(), true);
                return;
            }
            Err(ReadError::Malformed(msg)) => {
                let e = ApiError::bad_request(msg);
                write_reply(&mut stream, state, 400, "application/json", &e.body(), true);
                return;
            }
            Err(ReadError::TooLarge(msg)) => {
                let e = ApiError::new(413, msg);
                write_reply(&mut stream, state, 413, "application/json", &e.body(), true);
                return;
            }
        };
        served += 1;
        let started = Instant::now();
        let deadline = request_deadline(state, &head);

        // Streaming ingest: the body is consumed piece by piece *inside*
        // the endpoint (it may be far larger than any materialized-body
        // limit), so it bypasses the read-whole-body path below. In
        // router mode the stream is re-framed to the owning replica
        // instead of being profiled here.
        if head.method == "POST" && head.route_path() == "/v1/ingest" {
            let forwarded = match &state.router {
                Some(router) => router.forward_ingest(&state.metrics, &head, &mut reader, deadline),
                None => ingest_endpoint(&head, &mut reader, state, started, deadline),
            };
            let Some((status, body, consumed)) = forwarded else {
                return; // transport failed mid-body; nothing to answer
            };
            state
                .metrics
                .record_request(Endpoint::Ingest, started.elapsed(), status);
            // Keep-alive is only sound when the body was fully consumed —
            // otherwise unread trace bytes would be parsed as the next
            // request head.
            let close = !consumed || head.wants_close() || served >= state.keepalive_max;
            if !write_reply(&mut stream, state, status, "application/json", &body, close) || close {
                return;
            }
            continue;
        }

        let request = match http::read_body(&mut reader, &head) {
            Ok(body) => Request::from_parts(head, body),
            Err(ReadError::Eof)
            | Err(ReadError::Io(_))
            | Err(ReadError::Timeout { mid_request: false }) => return,
            Err(ReadError::Timeout { mid_request: true }) => {
                let e = ApiError::new(408, "timed out reading request");
                write_reply(&mut stream, state, 408, "application/json", &e.body(), true);
                return;
            }
            Err(ReadError::Malformed(msg)) => {
                let e = ApiError::bad_request(msg);
                write_reply(&mut stream, state, 400, "application/json", &e.body(), true);
                return;
            }
            Err(ReadError::TooLarge(msg)) => {
                let e = ApiError::new(413, msg);
                write_reply(&mut stream, state, 413, "application/json", &e.body(), true);
                return;
            }
        };
        let endpoint = classify(&request);
        let (status, body, content_type) = route(&request, state, started, deadline);
        state
            .metrics
            .record_request(endpoint, started.elapsed(), status);
        let close = request.wants_close() || served >= state.keepalive_max;
        if !write_reply(&mut stream, state, status, content_type, &body, close) || close {
            return;
        }
    }
}

/// The effective deadline of one request: the server's configured
/// budget, tightened by a router-propagated [`client::DEADLINE_HEADER`]
/// — a replica must never keep working on a request whose router has
/// already answered 504 upstream. The header can only shrink the
/// budget, never extend it.
fn request_deadline(state: &ServerState, head: &RequestHead) -> Duration {
    head.header(crate::client::DEADLINE_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .map(Duration::from_millis)
        .map_or(state.deadline, |propagated| propagated.min(state.deadline))
}

fn classify(request: &Request) -> Endpoint {
    match request.path.as_str() {
        "/v1/profile" => Endpoint::Profile,
        "/v1/clone" => Endpoint::Clone,
        "/v1/evaluate" => Endpoint::Evaluate,
        "/v1/analyze" => Endpoint::Analyze,
        _ => Endpoint::Other,
    }
}

/// `POST /v1/ingest`: stream the request body — the raw trace, text or
/// binary, usually chunked — into an [`gmap_ingest::Ingestor`] on the
/// connection thread, then finalize (drain, profile, report) on a worker
/// through the normal queue/deadline machinery.
///
/// Returns `(status, body, body_fully_consumed)`, or `None` when the
/// transport died mid-body and no response can be delivered. The third
/// element gates keep-alive: an error that abandons the body forces a
/// close.
fn ingest_endpoint<R: BufRead>(
    head: &RequestHead,
    reader: &mut R,
    state: &Arc<ServerState>,
    started: Instant,
    deadline: Duration,
) -> Option<(u16, String, bool)> {
    let err = |e: ApiError| Some((e.status, e.body(), false));
    let query = match api::parse_ingest_query(&head.path) {
        Ok(q) => q,
        Err(e) => return err(e),
    };
    let kind = match http::body_kind(head) {
        Ok(k) => k,
        Err(ReadError::Malformed(msg)) => return err(ApiError::bad_request(msg)),
        Err(_) => return None,
    };
    let mut body = match http::BodyReader::new(reader, kind, http::MAX_INGEST_BODY_BYTES) {
        Ok(b) => b,
        Err(ReadError::TooLarge(msg)) => return err(ApiError::new(413, msg)),
        Err(_) => return None,
    };
    let launch = LaunchConfig::new(query.grid, query.block);
    let mut ing =
        gmap_ingest::Ingestor::new(&query.name, launch, gmap_ingest::IngestConfig::default());
    let mut buf = vec![0u8; 64 * 1024];
    loop {
        // The deadline covers the whole request, including a slow
        // uploader: a stream that cannot finish in time is cut off here
        // rather than occupying the connection thread indefinitely.
        if started.elapsed() >= deadline {
            state
                .metrics
                .deadline_timeouts
                .fetch_add(1, Ordering::Relaxed);
            return err(ApiError::new(
                504,
                "deadline exceeded while streaming trace",
            ));
        }
        let n = match body.next_piece(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(ReadError::Malformed(msg)) => return err(ApiError::bad_request(msg)),
            Err(ReadError::TooLarge(msg)) => return err(ApiError::new(413, msg)),
            Err(ReadError::Timeout { .. }) => {
                return err(ApiError::new(408, "timed out reading trace body"))
            }
            Err(ReadError::Eof) | Err(ReadError::Io(_)) => return None,
        };
        state
            .metrics
            .ingest_bytes
            .fetch_add(n as u64, Ordering::Relaxed);
        if let Err(e) = ing.push_bytes(&buf[..n]) {
            // Parse or overflow error: the rest of the body is abandoned,
            // so the connection must close after the error response.
            return err(ApiError::bad_request(format!("trace rejected: {e}")));
        }
    }
    state.metrics.ingest_streams.fetch_add(1, Ordering::Relaxed);
    // Whatever the upload consumed of the budget is gone; the finalize
    // job runs under the remainder.
    let remaining = deadline.saturating_sub(started.elapsed());
    let (status, response) = run_job(state, remaining, ing, |state, ing, cancel| {
        let resp = handlers::ingest_finalize(&state.store, ing, cancel)?;
        if let Some(repl) = state.replication() {
            // Ingested models are stored unconditionally (the id hashes
            // the model itself), so always fan out.
            repl.enqueue(&resp.model_id);
        }
        Ok(resp)
    });
    Some((status, response, true))
}

/// Renders and writes one response. Returns `false` when the connection
/// must not serve further requests (write failure or an injected reset).
/// Transient 408/429/500/503/504 responses carry a `Retry-After` hint
/// for well-behaved clients (every `/v1/*` endpoint is idempotent, and
/// a request the server timed out reading is safe to resend).
fn write_reply(
    stream: &mut TcpStream,
    state: &Arc<ServerState>,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> bool {
    let opts = ResponseOpts {
        close,
        retry_after: matches!(status, 408 | 429 | 500 | 503 | 504).then_some(RETRY_AFTER_SECS),
    };
    let mut buf = Vec::with_capacity(body.len() + 128);
    if http::write_response_opts(&mut buf, status, content_type, body, opts).is_err() {
        return false;
    }
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    // A `reset` fault drops the connection after a fault-chosen prefix of
    // the response, simulating a mid-response network reset.
    if let Some(f) = &state.faults {
        if let Some(n) = f.reset_after(buf.len()) {
            let _ = stream.write_all(&buf[..n]);
            let _ = stream.flush();
            let _ = stream.shutdown(std::net::Shutdown::Both);
            return false;
        }
    }
    stream.write_all(&buf).is_ok() && stream.flush().is_ok()
}

/// Dispatches a parsed request to its endpoint and renders the response
/// body. Returns `(status, body, content_type)`. `deadline` is this
/// request's effective budget (possibly router-tightened), measured
/// from `started`.
fn route(
    request: &Request,
    state: &Arc<ServerState>,
    started: Instant,
    deadline: Duration,
) -> (u16, String, &'static str) {
    // Router mode: the pipeline endpoints are forwarded to the owning
    // replica right here on the connection thread, with the remaining
    // budget propagated. `/healthz`, `/metrics`, and `/v1/analyze`
    // (stateless) are still answered locally.
    if let Some(router) = &state.router {
        if request.method == "POST"
            && matches!(
                request.path.as_str(),
                "/v1/profile" | "/v1/clone" | "/v1/evaluate"
            )
        {
            let body = match request.body_utf8() {
                Ok(b) => b,
                Err(msg) => {
                    let e = ApiError::bad_request(msg);
                    return (e.status, e.body(), "application/json");
                }
            };
            let budget = deadline.saturating_sub(started.elapsed());
            let (status, reply) = router.forward(&state.metrics, &request.path, body, budget);
            return (status, reply, "application/json");
        }
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            // A draining replica is still *alive* (200) but advertises
            // the state so peers and routers deprioritize it.
            let body = if state.is_draining() {
                "{\"status\":\"draining\"}"
            } else {
                "{\"status\":\"ok\"}"
            };
            (200, body.to_string(), "application/json")
        }
        ("GET", "/metrics") => {
            let text = state.metrics.render(state.runtime_stats());
            (200, text, "text/plain; version=0.0.4")
        }
        ("POST", "/v1/profile") => profile_endpoint(request, state, started, deadline),
        ("POST", "/v1/analyze") => {
            // Pure static analysis: answered right here on the connection
            // thread — no queue slot, no worker, no deadline machinery.
            match parse_body::<api::AnalyzeRequest>(request).and_then(|req| handlers::analyze(&req))
            {
                Ok(resp) => {
                    let races = handlers::race_finding_count(&resp.report);
                    if races > 0 {
                        state
                            .metrics
                            .analyze_races
                            .fetch_add(races, Ordering::Relaxed);
                    }
                    (200, canonical_json(&resp), "application/json")
                }
                Err(e) => (e.status, e.body(), "application/json"),
            }
        }
        ("POST", "/v1/clone") => {
            json_endpoint(request, state, started, deadline, |state, req, cancel| {
                handlers::clone_model(&state.store, &req, cancel)
            })
        }
        ("POST", "/v1/evaluate") => {
            json_endpoint(request, state, started, deadline, |state, req, cancel| {
                handlers::evaluate(&state.store, &req, cancel)
            })
        }
        ("POST", "/v1/replicate") => {
            // Internal fleet endpoint: idempotent model push from a
            // peer. Runs through the worker pool like any store-touching
            // job, so injected faults apply. A push that created a new
            // entry is re-enqueued once, which converges the rest of
            // the replica set (an already-present entry stops the walk).
            json_endpoint(request, state, started, deadline, |state, req, cancel| {
                let resp = handlers::replicate_store(&state.store, &req, cancel)?;
                if resp.stored {
                    if let Some(repl) = state.replication() {
                        repl.enqueue(&resp.model_id);
                    }
                }
                Ok(resp)
            })
        }
        ("POST", "/v1/admin/drain") => {
            // Graceful decommission, answered on the connection thread:
            // flip to draining first (health probes now advertise it),
            // then synchronously stream every owned model to reachable
            // successors. Idempotent — a second call re-streams
            // whatever is still held.
            state.draining.store(true, Ordering::SeqCst);
            let (keys, pushed, failed) = state
                .replication
                .as_ref()
                .map_or((0, 0, 0), |repl| repl.drain_to_successors());
            let resp = api::DrainResponse {
                status: "draining".to_string(),
                keys,
                pushed,
                failed,
            };
            (200, canonical_json(&resp), "application/json")
        }
        ("GET", _) | ("POST", _) => {
            let e = ApiError::new(404, format!("no such route {}", request.path));
            (404, e.body(), "application/json")
        }
        (method, _) => {
            let e = ApiError::new(405, format!("method {method} not supported"));
            (405, e.body(), "application/json")
        }
    }
}

/// Parses a JSON request body into its wire type.
fn parse_body<Req: Deserialize>(request: &Request) -> Result<Req, ApiError> {
    let body = request.body_utf8().map_err(ApiError::bad_request)?;
    serde_json::from_str(body)
        .map_err(|e| ApiError::bad_request(format!("invalid request body: {e}")))
}

/// `POST /v1/profile`: the static-analysis admission gate runs here on
/// the connection thread, *before* the job queue — an inadmissible spec
/// is answered 422 without ever occupying a queue slot or a worker.
fn profile_endpoint(
    request: &Request,
    state: &Arc<ServerState>,
    started: Instant,
    deadline: Duration,
) -> (u16, String, &'static str) {
    let parsed: api::ProfileRequest = match parse_body(request) {
        Ok(r) => r,
        Err(e) => return (e.status, e.body(), "application/json"),
    };
    match handlers::admission_report(&parsed) {
        Ok(report) => {
            let races = handlers::race_finding_count(&report);
            if races > 0 {
                state
                    .metrics
                    .analyze_races
                    .fetch_add(races, Ordering::Relaxed);
            }
            if let Err(e) = handlers::gate_report(&report) {
                state
                    .metrics
                    .analyze_rejects
                    .fetch_add(1, Ordering::Relaxed);
                return (e.status, e.body(), "application/json");
            }
        }
        Err(e) => return (e.status, e.body(), "application/json"),
    }
    let budget = deadline.saturating_sub(started.elapsed());
    let (status, body) = run_job(state, budget, parsed, |state, req, cancel| {
        let resp = handlers::profile(&state.store, &state.metrics, &req, cancel)?;
        if let Some(repl) = state.replication() {
            if !resp.cached {
                // Fresh store: fan it out to the key's replica set.
                repl.enqueue(&resp.model_id);
            } else if !repl.is_owner(&resp.model_id) {
                // A hit for a key this replica does not own means the
                // owner was unreachable when the entry was created —
                // push it back (read-repair, deduplicated per key).
                repl.read_repair(&resp.model_id);
            }
        }
        Ok(resp)
    });
    (status, body, "application/json")
}

/// Parses the body, runs `handler` on the worker pool with backpressure
/// and a deadline, and renders the outcome.
fn json_endpoint<Req, Resp, F>(
    request: &Request,
    state: &Arc<ServerState>,
    started: Instant,
    deadline: Duration,
    handler: F,
) -> (u16, String, &'static str)
where
    Req: Deserialize + Send + 'static,
    Resp: Serialize,
    F: FnOnce(&ServerState, Req, &AtomicBool) -> Result<Resp, ApiError> + Send + 'static,
{
    let parsed: Req = match parse_body(request) {
        Ok(r) => r,
        Err(e) => return (e.status, e.body(), "application/json"),
    };
    let budget = deadline.saturating_sub(started.elapsed());
    let (status, body) = run_job(state, budget, parsed, handler);
    (status, body, "application/json")
}

/// Submits one handler invocation to the queue and waits for its result
/// under `deadline` — the request's remaining budget, already clamped to
/// any router-propagated `X-Gmap-Deadline-Ms`.
fn run_job<Req, Resp, F>(
    state: &Arc<ServerState>,
    deadline: Duration,
    parsed: Req,
    handler: F,
) -> (u16, String)
where
    Req: Send + 'static,
    Resp: Serialize,
    F: FnOnce(&ServerState, Req, &AtomicBool) -> Result<Resp, ApiError> + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let cancel = Arc::new(AtomicBool::new(false));
    let job_cancel = Arc::clone(&cancel);
    let job_state = Arc::clone(state);
    let enqueued = Instant::now();
    let submitted = state.queue.submit(Box::new(move || {
        // Load shedding: if the deadline expired while this job sat in
        // the queue, the requester has already been answered 504 — do
        // not burn a worker executing a result nobody will read.
        if enqueued.elapsed() >= deadline {
            job_state.metrics.jobs_shed.fetch_add(1, Ordering::Relaxed);
            let _ = tx.send(Err(ApiError::new(504, "deadline expired in queue")));
            return;
        }
        if let Some(f) = &job_state.faults {
            // Injected slow handler: occupies this worker like real
            // heavy work would.
            if let Some(pause) = f.slow_for() {
                thread::sleep(pause);
            }
            // Injected handler panic: contained by the worker loop; the
            // requester sees the channel close and answers 500.
            f.maybe_panic();
        }
        let result = handler(&job_state, parsed, &job_cancel).map(|resp| canonical_json(&resp));
        // The requester may have timed out and gone away; that's fine.
        let _ = tx.send(result);
    }));
    match submitted {
        Err(SubmitError::Full) => {
            state.metrics.rejected_full.fetch_add(1, Ordering::Relaxed);
            let e = ApiError::new(429, "job queue is full, retry later");
            (e.status, e.body())
        }
        Err(SubmitError::ShuttingDown) => {
            state
                .metrics
                .rejected_shutdown
                .fetch_add(1, Ordering::Relaxed);
            let e = ApiError::new(503, "service is shutting down");
            (e.status, e.body())
        }
        Ok(()) => match rx.recv_timeout(deadline) {
            Ok(Ok(body)) => (200, body),
            Ok(Err(e)) => (e.status, e.body()),
            Err(mpsc::RecvTimeoutError::Timeout) => {
                cancel.store(true, Ordering::Relaxed);
                state
                    .metrics
                    .deadline_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                let e = ApiError::new(504, "deadline exceeded");
                (e.status, e.body())
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                // The job dropped `tx` without sending: the handler
                // panicked and the worker pool contained it. Structured
                // 500 instead of a hung or reset connection.
                let e = ApiError::new(500, "internal error: handler panicked");
                (e.status, e.body())
            }
        },
    }
}
