//! Endpoint handlers: pure functions from a parsed request (plus server
//! state) to a canonical JSON response body.
//!
//! Handlers run on queue workers, never on connection threads. Each takes
//! a cooperative cancellation token — set when the requester's deadline
//! expires — and checks it between coarse units of work so an abandoned
//! request stops burning a worker.

use crate::api::{
    self, AnalyzeRequest, AnalyzeResponse, ApiError, CloneRequest, CloneResponse, EvaluateRequest,
    EvaluateResponse, GridPoint, IngestResponse, KernelCloneStats, ProfileRequest, ProfileResponse,
    ProfileStats, ReplicateRequest, ReplicateResponse,
};
use crate::cache::{ModelStore, StoredModel};
use crate::metrics::Metrics;
use gmap_analyze::analyze_kernel;
use gmap_core::cachekey;
use gmap_core::generate::generate_streams;
use gmap_core::profiler::ProfilerConfig;
use gmap_core::{fidelity, miniaturize, GmapProfile, SimtConfig};
use gmap_gpu::app::Application;
use gmap_gpu::kernel::KernelDesc;
use gmap_gpu::schedule::{WarpStream, WarpStreamEvent};
use gmap_gpu::workloads;
use gmap_memsim::prefetch::{StreamPrefetcherConfig, StridePrefetcherConfig};
use gmap_memsim::CacheConfig;
use gmap_trace::AccessKind;
use serde::Serialize;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The canonical workload spec whose content hash is the model id.
#[derive(Serialize)]
struct CanonicalSpec {
    workload: String,
    scale: String,
}

/// The model id for a (workload, scale) spec: the content hash of its
/// canonical JSON.
pub fn model_id_for(workload: &str, scale: &str) -> String {
    cachekey::key_of(&CanonicalSpec {
        workload: workload.to_string(),
        scale: scale.to_string(),
    })
}

/// Resolves the kernel a request names: either a built-in workload at a
/// scale, or an inline spec. Returns the kernel plus the model id its
/// profile would be cached under.
///
/// # Errors
///
/// 400 when neither or both of `workload`/`spec` are given, the workload
/// or scale name is unknown, or an inline spec fails structural
/// validation.
pub fn resolve_kernel(
    workload: Option<&str>,
    scale: Option<&str>,
    spec: Option<&KernelDesc>,
) -> Result<(KernelDesc, String), ApiError> {
    match (workload, spec) {
        (Some(_), Some(_)) => Err(ApiError::bad_request(
            "give either \"workload\" or \"spec\", not both",
        )),
        (None, None) => Err(ApiError::bad_request(
            "missing \"workload\" (a built-in name) or \"spec\" (an inline kernel)",
        )),
        (Some(name), None) => {
            let scale = api::parse_scale(scale)?;
            let kernel = workloads::by_name(name, scale).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown workload {name:?} (known: {})",
                    workloads::NAMES.join(", ")
                ))
            })?;
            let model_id = model_id_for(name, api::scale_name(scale));
            Ok((kernel, model_id))
        }
        (None, Some(spec)) => {
            spec.validate()
                .map_err(|e| ApiError::bad_request(format!("invalid kernel spec: {e}")))?;
            // Inline specs are content-addressed by their own canonical
            // JSON, so identical specs share a cache entry.
            let model_id = cachekey::key_of(spec);
            Ok((spec.clone(), model_id))
        }
    }
}

/// Resolves and statically analyzes a profile request, returning the
/// full report so callers can record race metrics before gating.
///
/// # Errors
///
/// 400 from kernel resolution only — admissibility is the caller's call
/// (see [`admission_gate`]).
pub fn admission_report(req: &ProfileRequest) -> Result<gmap_analyze::StaticReport, ApiError> {
    let (kernel, _) = resolve_kernel(
        req.workload.as_deref(),
        req.scale.as_deref(),
        req.spec.as_ref(),
    )?;
    Ok(analyze_kernel(&kernel))
}

/// Race findings (proven or potential, any severity) in a report, for
/// the `gmap_analyze_races_total` counter.
pub fn race_finding_count(report: &gmap_analyze::StaticReport) -> u64 {
    use gmap_analyze::FindingKind;
    report
        .findings
        .iter()
        .filter(|f| {
            matches!(
                f.kind,
                FindingKind::RaceWriteWrite
                    | FindingKind::RaceReadWrite
                    | FindingKind::RacePotential
            )
        })
        .count() as u64
}

/// Converts an analysis report into the admission verdict: 422 when the
/// analyzer found correctness errors (including proven data races in
/// barrier-phased kernels).
///
/// # Errors
///
/// 422 with the error findings.
pub fn gate_report(report: &gmap_analyze::StaticReport) -> Result<(), ApiError> {
    if report.has_errors() {
        let findings: Vec<String> = report.errors().map(|f| f.message.clone()).collect();
        return Err(ApiError::new(
            422,
            format!("spec rejected by static analysis: {}", findings.join("; ")),
        ));
    }
    Ok(())
}

/// The static-analysis admission gate: 422 when the analyzer finds
/// correctness errors. Runs on the connection thread, *before* the job
/// queue — an inadmissible spec never occupies a worker.
///
/// # Errors
///
/// 400 from kernel resolution, 422 with the error findings otherwise.
pub fn admission_gate(req: &ProfileRequest) -> Result<(), ApiError> {
    gate_report(&admission_report(req)?)
}

/// `POST /v1/analyze`: run the static analyzer and return the full
/// report. Pure computation over the spec — no execution, no queue.
/// Unlike profiling, a structurally invalid inline spec is *analyzed*
/// (yielding a `spec-error` finding), not rejected with 400 — the
/// endpoint exists to explain what is wrong with a spec.
///
/// # Errors
///
/// 400 for unresolvable requests (unknown workload, both or neither
/// source given).
pub fn analyze(req: &AnalyzeRequest) -> Result<AnalyzeResponse, ApiError> {
    let kernel = match (req.workload.as_deref(), req.spec.as_ref()) {
        (Some(_), Some(_)) => {
            return Err(ApiError::bad_request(
                "give either \"workload\" or \"spec\", not both",
            ))
        }
        (None, None) => {
            return Err(ApiError::bad_request(
                "missing \"workload\" (a built-in name) or \"spec\" (an inline kernel)",
            ))
        }
        (Some(name), None) => {
            let scale = api::parse_scale(req.scale.as_deref())?;
            workloads::by_name(name, scale).ok_or_else(|| {
                ApiError::bad_request(format!(
                    "unknown workload {name:?} (known: {})",
                    workloads::NAMES.join(", ")
                ))
            })?
        }
        (None, Some(spec)) => spec.clone(),
    };
    let report = analyze_kernel(&kernel);
    Ok(AnalyzeResponse {
        name: kernel.name.clone(),
        admissible: !report.has_errors(),
        errors: report.errors().count(),
        warnings: report.warnings().count(),
        report,
    })
}

fn check_cancel(cancel: &AtomicBool) -> Result<(), ApiError> {
    if cancel.load(Ordering::Relaxed) {
        Err(ApiError::new(504, "request cancelled by deadline"))
    } else {
        Ok(())
    }
}

/// Builds the deterministic statistics block for a profiled model.
pub fn profile_stats(model: &gmap_core::application::AppProfile) -> ProfileStats {
    ProfileStats {
        name: model.name.clone(),
        kernels: model.kernels.len(),
        slots: model.kernels.iter().map(GmapProfile::num_slots).collect(),
        fidelity: model
            .kernels
            .iter()
            .map(|k| fidelity::analyze(k).class)
            .collect(),
        content_key: cachekey::key_of(model),
    }
}

/// `POST /v1/profile`: profile a workload or inline spec (or serve it
/// from the cache).
///
/// # Errors
///
/// 400 for unknown workloads or scales or invalid specs, 504 on
/// cancellation.
pub fn profile(
    store: &ModelStore,
    metrics: &Metrics,
    req: &ProfileRequest,
    cancel: &AtomicBool,
) -> Result<ProfileResponse, ApiError> {
    let (kernel, model_id) = resolve_kernel(
        req.workload.as_deref(),
        req.scale.as_deref(),
        req.spec.as_ref(),
    )?;
    if let Some(hit) = store.get(&model_id) {
        metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
        return Ok(ProfileResponse {
            model_id,
            cached: true,
            stats: profile_stats(&hit.model),
        });
    }
    check_cancel(cancel)?;
    metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
    let app_name = req.workload.clone().unwrap_or_else(|| kernel.name.clone());
    let app = Application::new(&app_name, vec![kernel]);
    let model = gmap_core::profile_application(&app, &ProfilerConfig::default());
    check_cancel(cancel)?;
    let stored = store.insert(&model_id, model);
    Ok(ProfileResponse {
        model_id,
        cached: false,
        stats: profile_stats(&stored.model),
    })
}

/// `POST /v1/ingest` finalization: the connection thread has already
/// streamed the whole trace body into `ing`; this runs on a worker and
/// does the heavy lifting — warp-tail drain, profile construction, and
/// report assembly — then stores the model content-addressed by its own
/// hash (two traces producing identical models share a cache entry).
///
/// # Errors
///
/// 400 when the trace yields no in-geometry accesses, 504 on
/// cancellation.
pub fn ingest_finalize(
    store: &ModelStore,
    ing: gmap_ingest::Ingestor,
    cancel: &AtomicBool,
) -> Result<IngestResponse, ApiError> {
    check_cancel(cancel)?;
    let outcome = ing
        .finish()
        .map_err(|e| ApiError::bad_request(format!("trace rejected: {e}")))?;
    check_cancel(cancel)?;
    let model = gmap_core::application::AppProfile {
        name: outcome.profile.name.clone(),
        kernels: vec![outcome.profile],
    };
    let model_id = cachekey::key_of(&model);
    let stored = store.insert(&model_id, model);
    Ok(IngestResponse {
        model_id,
        stats: profile_stats(&stored.model),
        report: outcome.report,
        ingest: outcome.stats,
    })
}

/// `POST /v1/replicate`: internal fleet endpoint storing a model pushed
/// by a peer. Idempotent — an existing entry is acknowledged with
/// `stored: false` and never rewritten (entries are immutable). The
/// cache hit/miss counters are deliberately untouched: a replica copy
/// is warm-standby state, not served traffic, and the chaos suite
/// asserts `cache_misses` stays flat while replicas absorb a victim's
/// keys.
///
/// # Errors
///
/// 400 for a malformed model id (keys are 32 lower-hex chars — anything
/// else could not have been minted by this fleet), 504 on cancellation.
pub fn replicate_store(
    store: &ModelStore,
    req: &ReplicateRequest,
    cancel: &AtomicBool,
) -> Result<ReplicateResponse, ApiError> {
    let well_formed =
        req.model_id.len() == 32 && req.model_id.bytes().all(|b| b.is_ascii_hexdigit());
    if !well_formed {
        return Err(ApiError::bad_request(format!(
            "bad model id {:?} (expected 32 hex characters)",
            req.model_id
        )));
    }
    check_cancel(cancel)?;
    if store.get(&req.model_id).is_some() {
        return Ok(ReplicateResponse {
            model_id: req.model_id.clone(),
            stored: false,
        });
    }
    store.insert(&req.model_id, req.model.clone());
    Ok(ReplicateResponse {
        model_id: req.model_id.clone(),
        stored: true,
    })
}

fn lookup(store: &ModelStore, model_id: &str) -> Result<Arc<StoredModel>, ApiError> {
    store.get(model_id).ok_or_else(|| {
        ApiError::new(
            404,
            format!("unknown model id {model_id:?} (profile a workload first)"),
        )
    })
}

/// Statistics of one kernel's generated streams.
fn stream_stats(kernel: &str, streams: &[WarpStream]) -> KernelCloneStats {
    let mut stats = KernelCloneStats {
        kernel: kernel.to_string(),
        warps: streams.len(),
        accesses: 0,
        reads: 0,
        writes: 0,
        lines: 0,
        syncs: 0,
    };
    for stream in streams {
        for event in &stream.events {
            match event {
                WarpStreamEvent::Access(a) => {
                    stats.accesses += 1;
                    stats.lines += a.lines.len() as u64;
                    match a.kind {
                        AccessKind::Read => stats.reads += 1,
                        AccessKind::Write => stats.writes += 1,
                    }
                }
                WarpStreamEvent::Sync => stats.syncs += 1,
            }
        }
    }
    stats
}

/// `POST /v1/clone`: generate proxy streams (optionally miniaturized) and
/// report their statistics.
///
/// # Errors
///
/// 404 for unknown model ids, 400 for invalid factors, 504 on
/// cancellation.
pub fn clone_model(
    store: &ModelStore,
    req: &CloneRequest,
    cancel: &AtomicBool,
) -> Result<CloneResponse, ApiError> {
    let stored = lookup(store, &req.model_id)?;
    let factor = req.factor.unwrap_or(1.0);
    let seed = req.seed.unwrap_or(api::DEFAULT_SEED);
    let mut kernels = Vec::with_capacity(stored.model.kernels.len());
    for profile in &stored.model.kernels {
        check_cancel(cancel)?;
        let mini = miniaturize(profile, factor)
            .map_err(|e| ApiError::bad_request(format!("bad miniaturization factor: {e}")))?;
        let streams = generate_streams(&mini, seed);
        kernels.push(stream_stats(&profile.name, &streams));
    }
    Ok(CloneResponse {
        model_id: req.model_id.clone(),
        factor,
        seed,
        kernels,
    })
}

/// Translates one grid point into a full simulation configuration over
/// the Fermi baseline.
///
/// Prefetcher attachments are validated here against the constructor
/// envelopes ([`StridePrefetcherConfig::is_supported`],
/// [`StreamPrefetcherConfig::is_supported`]) so an out-of-range request
/// is a 400, not a worker panic on the direct simulation path.
///
/// # Errors
///
/// 400 for invalid cache geometry, unknown policy/level names,
/// prefetchers on the wrong level, or unsupported prefetcher parameters.
pub fn grid_config(point: &GridPoint, seed: u64) -> Result<SimtConfig, ApiError> {
    let policy = api::parse_policy(point.policy.as_deref())?;
    let line = point.line.unwrap_or(128);
    let cache = CacheConfig::new(point.size_kb * 1024, point.assoc, line, policy)
        .map_err(|e| ApiError::bad_request(format!("invalid cache config: {e}")))?;
    let mut cfg = SimtConfig {
        seed,
        ..SimtConfig::default()
    };
    let is_l1 = match point.level.as_deref() {
        None | Some("l1") => {
            cfg.hierarchy.l1 = cache;
            true
        }
        Some("l2") => {
            cfg.hierarchy.l2 = cache;
            false
        }
        Some(other) => {
            return Err(ApiError::bad_request(format!(
                "unknown level {other:?} (expected l1 or l2)"
            )))
        }
    };
    if let Some(stride) = &point.stride_prefetch {
        if !is_l1 {
            return Err(ApiError::bad_request(
                "stride_prefetch attaches to the L1 (level \"l1\")",
            ));
        }
        let pf = StridePrefetcherConfig {
            table_size: stride.table,
            degree: stride.degree,
            distance: stride.distance.unwrap_or(1),
            min_confidence: stride.confidence.unwrap_or(2),
        };
        if !pf.is_supported() {
            return Err(ApiError::bad_request(format!(
                "unsupported stride prefetcher (table {} degree {} distance {}): \
                 table must be a power of two <= 4096, degree 1-32, distance <= 64",
                pf.table_size, pf.degree, pf.distance
            )));
        }
        cfg.hierarchy.l1_prefetch = Some(pf);
    }
    if let Some(stream) = &point.stream_prefetch {
        if is_l1 {
            return Err(ApiError::bad_request(
                "stream_prefetch attaches to the L2 (level \"l2\")",
            ));
        }
        let pf = StreamPrefetcherConfig {
            num_streams: stream.streams.unwrap_or(16),
            window: stream.window,
            degree: stream.degree,
        };
        if !pf.is_supported() {
            return Err(ApiError::bad_request(format!(
                "unsupported stream prefetcher (streams {} window {} degree {}): \
                 streams 1-256, window 1-1024, degree 1-32",
                pf.num_streams, pf.window, pf.degree
            )));
        }
        cfg.hierarchy.l2_prefetch = Some(pf);
    }
    Ok(cfg)
}

/// `POST /v1/evaluate`: run a hierarchy grid against one kernel of a
/// cached model, through the single-pass sweep engine when eligible.
///
/// # Errors
///
/// 404 for unknown model ids, 400 for empty grids / bad indices / bad
/// configs, 504 on cancellation.
pub fn evaluate(
    store: &ModelStore,
    req: &EvaluateRequest,
    cancel: &AtomicBool,
) -> Result<EvaluateResponse, ApiError> {
    let stored = lookup(store, &req.model_id)?;
    if req.grid.is_empty() {
        return Err(ApiError::bad_request("grid must not be empty"));
    }
    let kernel = req.kernel.unwrap_or(0);
    let profile = stored.model.kernels.get(kernel).ok_or_else(|| {
        ApiError::bad_request(format!(
            "kernel index {kernel} out of range (model has {} kernels)",
            stored.model.kernels.len()
        ))
    })?;
    let metric = api::parse_metric(req.metric.as_deref())?;
    let seed = req.seed.unwrap_or(api::DEFAULT_SEED);
    let configs = req
        .grid
        .iter()
        .map(|p| grid_config(p, seed))
        .collect::<Result<Vec<_>, _>>()?;
    let eval = gmap_bench::evaluate_profile(profile, &configs, metric, seed, Some(cancel))
        .ok_or_else(|| ApiError::new(504, "request cancelled by deadline"))?;
    Ok(EvaluateResponse {
        model_id: req.model_id.clone(),
        kernel,
        metric: req.metric.clone().unwrap_or_else(|| "l1_miss_pct".into()),
        single_pass: eval.single_pass,
        values: eval.values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_bench::Metric;
    use gmap_core::simulate_streams;

    fn state() -> (ModelStore, Metrics) {
        (
            ModelStore::new(None).expect("memory-only store"),
            Metrics::new(),
        )
    }

    fn fresh_cancel() -> AtomicBool {
        AtomicBool::new(false)
    }

    /// A default L1 grid point at the given geometry.
    fn point(size_kb: u64, assoc: u32) -> GridPoint {
        GridPoint {
            level: None,
            size_kb,
            assoc,
            line: None,
            policy: None,
            stride_prefetch: None,
            stream_prefetch: None,
        }
    }

    #[test]
    fn profile_then_cache_hit() {
        let (store, metrics) = state();
        let req = ProfileRequest {
            workload: Some("kmeans".into()),
            scale: Some("tiny".into()),
            spec: None,
        };
        let first = profile(&store, &metrics, &req, &fresh_cancel()).expect("profiles");
        assert!(!first.cached);
        assert_eq!(first.stats.kernels, 1);
        let second = profile(&store, &metrics, &req, &fresh_cancel()).expect("cache hit");
        assert!(second.cached);
        assert_eq!(first.model_id, second.model_id);
        assert_eq!(first.stats, second.stats);
        assert_eq!(metrics.cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(metrics.cache_misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn model_ids_are_spec_addressed() {
        assert_eq!(
            model_id_for("kmeans", "tiny"),
            model_id_for("kmeans", "tiny")
        );
        assert_ne!(
            model_id_for("kmeans", "tiny"),
            model_id_for("kmeans", "small")
        );
        assert_ne!(model_id_for("kmeans", "tiny"), model_id_for("bfs", "tiny"));
    }

    #[test]
    fn unknown_workload_is_a_400() {
        let (store, metrics) = state();
        let req = ProfileRequest {
            workload: Some("not-a-workload".into()),
            scale: None,
            spec: None,
        };
        let err = profile(&store, &metrics, &req, &fresh_cancel()).expect_err("rejected");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("kmeans"), "lists known workloads");
    }

    #[test]
    fn clone_stats_match_direct_generation() {
        let (store, metrics) = state();
        let req = ProfileRequest {
            workload: Some("hotspot".into()),
            scale: Some("tiny".into()),
            spec: None,
        };
        let prof = profile(&store, &metrics, &req, &fresh_cancel()).expect("profiles");
        let resp = clone_model(
            &store,
            &CloneRequest {
                model_id: prof.model_id.clone(),
                factor: None,
                seed: None,
            },
            &fresh_cancel(),
        )
        .expect("clones");
        assert_eq!(resp.factor, 1.0);
        let stored = store.get(&prof.model_id).expect("cached");
        let direct = generate_streams(&stored.model.kernels[0], api::DEFAULT_SEED);
        assert_eq!(resp.kernels[0], stream_stats("hotspot", &direct));
        assert!(resp.kernels[0].accesses > 0);
        assert_eq!(
            resp.kernels[0].reads + resp.kernels[0].writes,
            resp.kernels[0].accesses
        );

        let err = clone_model(
            &store,
            &CloneRequest {
                model_id: prof.model_id,
                factor: Some(-2.0),
                seed: None,
            },
            &fresh_cancel(),
        )
        .expect_err("bad factor");
        assert_eq!(err.status, 400);
    }

    #[test]
    fn evaluate_matches_direct_simulation() {
        let (store, metrics) = state();
        let prof = profile(
            &store,
            &metrics,
            &ProfileRequest {
                workload: Some("kmeans".into()),
                scale: Some("tiny".into()),
                spec: None,
            },
            &fresh_cancel(),
        )
        .expect("profiles");
        let grid = vec![point(16, 4), point(64, 8)];
        let resp = evaluate(
            &store,
            &EvaluateRequest {
                model_id: prof.model_id.clone(),
                kernel: None,
                metric: None,
                seed: None,
                grid: grid.clone(),
            },
            &fresh_cancel(),
        )
        .expect("evaluates");
        assert!(resp.single_pass, "pure-LRU L1 grid takes the fast path");
        assert_eq!(resp.values.len(), 2);

        // Cross-check against direct simulation of the same streams.
        let stored = store.get(&prof.model_id).expect("cached");
        let profile_ref = &stored.model.kernels[0];
        let streams = generate_streams(profile_ref, api::DEFAULT_SEED);
        for (point, served) in grid.iter().zip(&resp.values) {
            let cfg = grid_config(point, api::DEFAULT_SEED).expect("valid point");
            let direct = simulate_streams(&streams, &profile_ref.launch, &cfg)
                .expect("valid config")
                .l1_miss_pct();
            assert!(
                (direct - served).abs() < 1e-9,
                "served {served} vs direct {direct}"
            );
        }
        assert!(
            resp.values[0] >= resp.values[1] - 1e-9,
            "bigger L1, fewer misses"
        );
    }

    #[test]
    fn evaluate_rejects_bad_requests() {
        let (store, metrics) = state();
        let prof = profile(
            &store,
            &metrics,
            &ProfileRequest {
                workload: Some("bfs".into()),
                scale: Some("tiny".into()),
                spec: None,
            },
            &fresh_cancel(),
        )
        .expect("profiles");
        let base = EvaluateRequest {
            model_id: prof.model_id.clone(),
            kernel: None,
            metric: None,
            seed: None,
            grid: vec![],
        };
        assert_eq!(
            evaluate(&store, &base, &fresh_cancel())
                .expect_err("empty grid")
                .status,
            400
        );
        let mut missing = base.clone();
        missing.model_id = "feedbeef".into();
        missing.grid = vec![point(16, 4)];
        assert_eq!(
            evaluate(&store, &missing, &fresh_cancel())
                .expect_err("unknown id")
                .status,
            404
        );
        let mut bad_kernel = missing.clone();
        bad_kernel.model_id = prof.model_id.clone();
        bad_kernel.kernel = Some(9);
        assert_eq!(
            evaluate(&store, &bad_kernel, &fresh_cancel())
                .expect_err("kernel out of range")
                .status,
            400
        );
    }

    #[test]
    fn cancellation_surfaces_as_504() {
        let (store, metrics) = state();
        let cancelled = AtomicBool::new(true);
        let err = profile(
            &store,
            &metrics,
            &ProfileRequest {
                workload: Some("kmeans".into()),
                scale: Some("tiny".into()),
                spec: None,
            },
            &cancelled,
        )
        .expect_err("cancelled");
        assert_eq!(err.status, 504);
    }

    #[test]
    fn resolve_kernel_requires_exactly_one_source() {
        let spec = gmap_analyze::fixtures::clean_streaming();
        assert_eq!(
            resolve_kernel(Some("kmeans"), None, Some(&spec))
                .expect_err("both")
                .status,
            400
        );
        assert_eq!(
            resolve_kernel(None, None, None)
                .expect_err("neither")
                .status,
            400
        );
        let (kernel, id) = resolve_kernel(None, None, Some(&spec)).expect("inline spec");
        assert_eq!(kernel.name, spec.name);
        assert_eq!(id, cachekey::key_of(&spec), "content-addressed");
    }

    #[test]
    fn admission_gate_rejects_error_specs_with_422() {
        let bad = ProfileRequest {
            workload: None,
            scale: None,
            spec: Some(gmap_analyze::fixtures::oob_affine()),
        };
        let err = admission_gate(&bad).expect_err("oob spec rejected");
        assert_eq!(err.status, 422);
        assert!(
            err.message.contains("static analysis"),
            "names the gate: {}",
            err.message
        );

        // Warnings (uncoalesced) do not block admission; neither do the
        // built-in workloads.
        for req in [
            ProfileRequest {
                workload: None,
                scale: None,
                spec: Some(gmap_analyze::fixtures::uncoalesced()),
            },
            ProfileRequest {
                workload: Some("kmeans".into()),
                scale: Some("tiny".into()),
                spec: None,
            },
        ] {
            admission_gate(&req).expect("admissible");
        }
    }

    #[test]
    fn admission_gate_rejects_racy_barrier_phased_specs_with_422() {
        let racy = ProfileRequest {
            workload: None,
            scale: None,
            spec: Some(gmap_analyze::fixtures::race_ww()),
        };
        let report = admission_report(&racy).expect("resolves and analyzes");
        assert!(race_finding_count(&report) >= 1, "{:?}", report.findings);
        let err = admission_gate(&racy).expect_err("racy spec rejected");
        assert_eq!(err.status, 422);
        assert!(
            err.message.contains("race"),
            "names the race: {}",
            err.message
        );

        // A certified phased kernel sails through, and its report counts
        // zero race findings.
        let clean = ProfileRequest {
            workload: None,
            scale: None,
            spec: Some(gmap_analyze::fixtures::phased_stencil()),
        };
        let report = admission_report(&clean).expect("resolves and analyzes");
        assert!(report.race_certified);
        assert_eq!(race_finding_count(&report), 0);
        admission_gate(&clean).expect("admissible");
    }

    #[test]
    fn profile_accepts_inline_specs_and_content_addresses_them() {
        let (store, metrics) = state();
        let spec = gmap_analyze::fixtures::clean_streaming();
        let req = ProfileRequest {
            workload: None,
            scale: None,
            spec: Some(spec.clone()),
        };
        let first = profile(&store, &metrics, &req, &fresh_cancel()).expect("profiles spec");
        assert!(!first.cached);
        assert_eq!(first.model_id, cachekey::key_of(&spec));
        let second = profile(&store, &metrics, &req, &fresh_cancel()).expect("cache hit");
        assert!(second.cached);
        assert_eq!(first.stats, second.stats);
    }

    #[test]
    fn analyze_reports_findings_without_executing() {
        let resp = analyze(&AnalyzeRequest {
            workload: None,
            scale: None,
            spec: Some(gmap_analyze::fixtures::oob_affine()),
        })
        .expect("analyzes");
        assert!(!resp.admissible);
        assert!(resp.errors >= 1);
        assert!(resp.report.has_errors());

        let clean = analyze(&AnalyzeRequest {
            workload: Some("streamcluster".into()),
            scale: Some("tiny".into()),
            spec: None,
        })
        .expect("analyzes workload");
        assert!(clean.admissible);
        assert_eq!(clean.errors, 0);

        assert_eq!(
            analyze(&AnalyzeRequest {
                workload: Some("nope".into()),
                scale: None,
                spec: None,
            })
            .expect_err("unknown workload")
            .status,
            400
        );
    }

    #[test]
    fn fifo_grid_points_stay_on_the_single_pass_path() {
        // FIFO used to force the direct path; the insertion-order
        // stack-distance evaluator now plans it single-pass.
        let mut fifo = point(16, 4);
        fifo.policy = Some("fifo".into());
        let cfg = grid_config(&fifo, 1).expect("valid");
        let plan = gmap_bench::engine::plan_single_pass(&[cfg], Metric::L1MissPct)
            .expect("FIFO grids plan single-pass");
        assert_eq!(plan.groups.len(), 1);

        // PLRU has no stack-distance evaluator and still falls back.
        let mut plru = point(16, 4);
        plru.policy = Some("plru".into());
        let cfg = grid_config(&plru, 1).expect("valid");
        assert!(gmap_bench::engine::plan_single_pass(&[cfg], Metric::L1MissPct).is_none());
    }

    #[test]
    fn prefetcher_grid_points_map_and_plan_single_pass() {
        let mut stride = point(16, 4);
        stride.stride_prefetch = Some(crate::api::StridePoint {
            table: 64,
            degree: 2,
            distance: None,
            confidence: None,
        });
        let cfg = grid_config(&stride, 1).expect("valid stride point");
        let pf = cfg.hierarchy.l1_prefetch.expect("prefetcher attached");
        assert_eq!((pf.table_size, pf.degree), (64, 2));
        assert_eq!((pf.distance, pf.min_confidence), (1, 2), "defaults applied");
        let plan = gmap_bench::engine::plan_single_pass(&[cfg], Metric::L1MissPct)
            .expect("stride-prefetcher grids plan single-pass");
        assert_eq!(plan.groups[0].l1_prefetch, Some(pf));

        let mut stream = point(512, 8);
        stream.level = Some("l2".into());
        stream.stream_prefetch = Some(crate::api::StreamPoint {
            streams: None,
            window: 16,
            degree: 4,
        });
        let cfg = grid_config(&stream, 1).expect("valid stream point");
        let pf = cfg.hierarchy.l2_prefetch.expect("prefetcher attached");
        assert_eq!((pf.num_streams, pf.window, pf.degree), (16, 16, 4));
        let plan = gmap_bench::engine::plan_single_pass(&[cfg], Metric::L2MissPct)
            .expect("stream-prefetcher grids plan single-pass");
        assert_eq!(plan.groups[0].l2_prefetch, Some(pf));
    }

    #[test]
    fn unsupported_or_misplaced_prefetchers_are_400s() {
        // Out-of-envelope stride table (not a power of two).
        let mut bad_table = point(16, 4);
        bad_table.stride_prefetch = Some(crate::api::StridePoint {
            table: 3,
            degree: 2,
            distance: None,
            confidence: None,
        });
        let err = grid_config(&bad_table, 1).expect_err("rejected");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("power of two"), "{}", err.message);

        // Stride prefetcher on an L2 point.
        let mut wrong_level = point(512, 8);
        wrong_level.level = Some("l2".into());
        wrong_level.stride_prefetch = Some(crate::api::StridePoint {
            table: 64,
            degree: 2,
            distance: None,
            confidence: None,
        });
        let err = grid_config(&wrong_level, 1).expect_err("rejected");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("l1"), "{}", err.message);

        // Stream prefetcher on an L1 point.
        let mut wrong_level = point(16, 4);
        wrong_level.stream_prefetch = Some(crate::api::StreamPoint {
            streams: None,
            window: 16,
            degree: 4,
        });
        let err = grid_config(&wrong_level, 1).expect_err("rejected");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("l2"), "{}", err.message);

        // Out-of-envelope stream degree.
        let mut bad_degree = point(512, 8);
        bad_degree.level = Some("l2".into());
        bad_degree.stream_prefetch = Some(crate::api::StreamPoint {
            streams: None,
            window: 16,
            degree: 99,
        });
        let err = grid_config(&bad_degree, 1).expect_err("rejected");
        assert_eq!(err.status, 400);
        assert!(err.message.contains("degree"), "{}", err.message);
    }
}
