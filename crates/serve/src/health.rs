//! Peer health registry: a per-replica circuit breaker fed by passive
//! request outcomes and periodic active `/healthz` probes.
//!
//! Every component that talks to peers — the router's failover walk,
//! [`crate::client::PeerClient`], and the replication worker — shares
//! one [`PeerHealth`] registry. The breaker runs the classic three
//! states per peer:
//!
//! * **Closed** (healthy): requests flow; consecutive transport
//!   failures are counted.
//! * **Open** (ejected): after [`FAILURE_THRESHOLD`] consecutive
//!   failures the peer is skipped entirely — callers stop paying its
//!   connect timeout. Each Closed→Open transition increments
//!   `gmap_peer_ejections_total`.
//! * **Half-open**: once the cooldown elapses, the next caller (or the
//!   prober) is let through as a trial. Success closes the breaker
//!   (counted in `gmap_peer_recoveries_total`); failure re-opens it and
//!   restarts the cooldown.
//!
//! Orthogonally to the breaker, a peer can advertise **draining** via
//! its `/healthz` body: it is alive (it still answers, still serves its
//! cache) but asks not to receive new keyed traffic while it streams
//! its models to successors. Routing walks treat draining like
//! ejection — skip with fallback — but the breaker state is untouched.
//!
//! The active prober ([`spawn_prober`]) GETs `/healthz` from every peer
//! each probe interval with a short timeout, feeding the same
//! success/failure edges the passive path uses. This bounds
//! recovery-detection latency even when no client traffic touches the
//! dead peer, which is what makes hinted-handoff replay prompt.

use crate::client;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Consecutive transport failures that open a peer's breaker.
pub const FAILURE_THRESHOLD: u32 = 3;

/// Multiple of the probe interval an open breaker waits before
/// half-opening. Two intervals guarantees at least one full probe cycle
/// passes before the trial request.
pub const COOLDOWN_INTERVALS: u32 = 2;

/// Breaker state of one peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Breaker {
    /// Healthy: requests flow.
    Closed,
    /// Ejected: skipped until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one trial in flight decides the next state.
    HalfOpen,
}

/// Mutable per-peer slot behind the registry lock.
#[derive(Debug)]
struct Slot {
    state: Breaker,
    consecutive_failures: u32,
    /// When the breaker last opened (drives the cooldown).
    opened_at: Option<Instant>,
    draining: bool,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            state: Breaker::Closed,
            consecutive_failures: 0,
            opened_at: None,
            draining: false,
        }
    }
}

/// A point-in-time view of one peer, for `/metrics` gauges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerStatus {
    /// The peer's `host:port` address.
    pub peer: String,
    /// Whether the breaker currently admits requests (closed or
    /// half-open).
    pub up: bool,
    /// Whether the peer advertises draining.
    pub draining: bool,
}

/// The shared health registry over a fixed peer list.
#[derive(Debug)]
pub struct PeerHealth {
    /// Peer addresses in listing order; slots are index-parallel.
    peers: Vec<String>,
    slots: Mutex<Vec<Slot>>,
    cooldown: Duration,
    ejections: AtomicU64,
    recoveries: AtomicU64,
}

impl PeerHealth {
    /// Builds a registry over `peers` with every breaker closed. The
    /// cooldown before half-opening is [`COOLDOWN_INTERVALS`] probe
    /// intervals.
    pub fn new(peers: &[String], probe_interval: Duration) -> PeerHealth {
        PeerHealth {
            peers: peers.to_vec(),
            slots: Mutex::new(peers.iter().map(|_| Slot::new()).collect()),
            cooldown: probe_interval * COOLDOWN_INTERVALS,
            ejections: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
        }
    }

    /// The peer addresses this registry tracks, in listing order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    fn index_of(&self, peer: &str) -> Option<usize> {
        self.peers.iter().position(|p| p == peer)
    }

    /// Whether `peer` should be attempted right now. Open breakers
    /// return `false` until their cooldown elapses, then flip to
    /// half-open and admit a trial. Unknown peers are always admitted
    /// (the registry never blocks traffic it was not configured for).
    pub fn available(&self, peer: &str) -> bool {
        let Some(i) = self.index_of(peer) else {
            return true;
        };
        let mut slots = self.slots.lock().expect("health lock");
        let slot = &mut slots[i];
        match slot.state {
            Breaker::Closed | Breaker::HalfOpen => true,
            Breaker::Open => {
                let elapsed = slot.opened_at.map_or(Duration::MAX, |t| t.elapsed());
                if elapsed >= self.cooldown {
                    slot.state = Breaker::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether `peer` currently advertises draining.
    pub fn is_draining(&self, peer: &str) -> bool {
        self.index_of(peer)
            .is_some_and(|i| self.slots.lock().expect("health lock")[i].draining)
    }

    /// Whether `peer` should receive new keyed traffic: admitted by the
    /// breaker and not draining.
    pub fn usable(&self, peer: &str) -> bool {
        self.available(peer) && !self.is_draining(peer)
    }

    /// Records a successful exchange with `peer`: resets the failure
    /// count and closes the breaker (counting a recovery if it was
    /// open or half-open).
    pub fn record_success(&self, peer: &str) {
        let Some(i) = self.index_of(peer) else {
            return;
        };
        let mut slots = self.slots.lock().expect("health lock");
        let slot = &mut slots[i];
        slot.consecutive_failures = 0;
        if slot.state != Breaker::Closed {
            slot.state = Breaker::Closed;
            slot.opened_at = None;
            self.recoveries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records a transport failure against `peer`. A half-open trial
    /// failure re-opens immediately; a closed peer opens after
    /// [`FAILURE_THRESHOLD`] consecutive failures. Every Closed/
    /// HalfOpen → Open edge counts as an ejection.
    pub fn record_failure(&self, peer: &str) {
        let Some(i) = self.index_of(peer) else {
            return;
        };
        let mut slots = self.slots.lock().expect("health lock");
        let slot = &mut slots[i];
        slot.consecutive_failures = slot.consecutive_failures.saturating_add(1);
        let open_now = match slot.state {
            Breaker::HalfOpen => true,
            Breaker::Closed => slot.consecutive_failures >= FAILURE_THRESHOLD,
            Breaker::Open => false,
        };
        if open_now {
            slot.state = Breaker::Open;
            slot.opened_at = Some(Instant::now());
            self.ejections.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Marks `peer` as draining (or not) from a `/healthz` probe or a
    /// drain notification.
    pub fn set_draining(&self, peer: &str, draining: bool) {
        if let Some(i) = self.index_of(peer) {
            self.slots.lock().expect("health lock")[i].draining = draining;
        }
    }

    /// Total Closed/HalfOpen → Open transitions.
    pub fn ejections(&self) -> u64 {
        self.ejections.load(Ordering::Relaxed)
    }

    /// Total Open/HalfOpen → Closed transitions.
    pub fn recoveries(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of every peer, for `/metrics`.
    pub fn snapshot(&self) -> Vec<PeerStatus> {
        let slots = self.slots.lock().expect("health lock");
        self.peers
            .iter()
            .zip(slots.iter())
            .map(|(peer, slot)| PeerStatus {
                peer: peer.clone(),
                up: slot.state != Breaker::Open,
                draining: slot.draining,
            })
            .collect()
    }
}

/// Probes one peer's `/healthz` once and feeds the result into the
/// registry. Returns whether the peer answered at all.
pub fn probe_once(health: &PeerHealth, peer: &str, timeout: Duration) -> bool {
    match client::request_with_deadline(peer, "GET", "/healthz", None, Some(timeout)) {
        Ok(resp) if resp.is_ok() => {
            health.record_success(peer);
            health.set_draining(peer, resp.body.contains("\"draining\""));
            true
        }
        // A non-2xx /healthz means the process is up but unhealthy —
        // treat it like a transport failure for routing purposes.
        Ok(_) | Err(_) => {
            health.record_failure(peer);
            false
        }
    }
}

/// A handle over the background prober thread; stops and joins it on
/// [`ProbeHandle::stop`] (or drop).
#[derive(Debug)]
pub struct ProbeHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ProbeHandle {
    /// Signals the prober to stop and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ProbeHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the active prober: every `interval` it probes each peer's
/// `/healthz` (excluding `skip_self`, the server's own advertised
/// address) with a timeout of half the interval.
pub fn spawn_prober(
    health: Arc<PeerHealth>,
    interval: Duration,
    skip_self: Option<String>,
) -> ProbeHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let timeout = (interval / 2).max(Duration::from_millis(50));
    let thread = std::thread::Builder::new()
        .name("gmap-health-prober".into())
        .spawn(move || {
            while !stop_flag.load(Ordering::SeqCst) {
                for peer in health.peers() {
                    if stop_flag.load(Ordering::SeqCst) {
                        return;
                    }
                    if skip_self.as_deref() == Some(peer.as_str()) {
                        continue;
                    }
                    probe_once(&health, peer, timeout);
                }
                // Sleep in small slices so shutdown stays prompt even
                // with a long probe interval.
                let deadline = Instant::now() + interval;
                while Instant::now() < deadline {
                    if stop_flag.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(20).min(interval));
                }
            }
        })
        .expect("spawn prober thread");
    ProbeHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn peers(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.9.0.{i}:9{i:03}")).collect()
    }

    #[test]
    fn breaker_opens_after_threshold_and_half_opens_after_cooldown() {
        let h = PeerHealth::new(&peers(2), Duration::from_millis(10));
        let p = "10.9.0.0:9000";
        for _ in 0..FAILURE_THRESHOLD - 1 {
            h.record_failure(p);
            assert!(h.available(p), "below threshold stays closed");
        }
        h.record_failure(p);
        assert!(!h.available(p), "threshold reached: ejected");
        assert_eq!(h.ejections(), 1);
        assert!(h.available("10.9.0.1:9001"), "other peers unaffected");

        // Cooldown (2 × 10ms) elapses: half-open admits a trial.
        std::thread::sleep(Duration::from_millis(25));
        assert!(h.available(p), "half-open admits a trial");

        // Trial failure re-opens immediately (no threshold).
        h.record_failure(p);
        assert!(!h.available(p), "failed trial re-ejects");
        assert_eq!(h.ejections(), 2);

        // Trial success closes and counts a recovery.
        std::thread::sleep(Duration::from_millis(25));
        assert!(h.available(p));
        h.record_success(p);
        assert!(h.available(p));
        assert_eq!(h.recoveries(), 1);
        // Failures must start counting from zero again.
        h.record_failure(p);
        assert!(h.available(p), "one failure after recovery stays closed");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let h = PeerHealth::new(&peers(1), Duration::from_millis(10));
        let p = "10.9.0.0:9000";
        for _ in 0..100 {
            h.record_failure(p);
            h.record_success(p);
        }
        assert!(h.available(p), "interleaved successes never eject");
        assert_eq!(h.ejections(), 0);
    }

    #[test]
    fn draining_is_orthogonal_to_the_breaker() {
        let h = PeerHealth::new(&peers(2), Duration::from_millis(10));
        let p = "10.9.0.1:9001";
        assert!(h.usable(p));
        h.set_draining(p, true);
        assert!(h.available(p), "draining peer is still alive");
        assert!(!h.usable(p), "but not usable for new keyed traffic");
        assert!(h.is_draining(p));
        h.set_draining(p, false);
        assert!(h.usable(p));
    }

    #[test]
    fn unknown_peers_are_admitted_and_uncounted() {
        let h = PeerHealth::new(&peers(1), Duration::from_millis(10));
        for _ in 0..10 {
            h.record_failure("unknown:1");
        }
        assert!(h.available("unknown:1"));
        assert_eq!(h.ejections(), 0);
    }

    #[test]
    fn snapshot_reflects_state() {
        let h = PeerHealth::new(&peers(2), Duration::from_secs(10));
        for _ in 0..FAILURE_THRESHOLD {
            h.record_failure("10.9.0.0:9000");
        }
        h.set_draining("10.9.0.1:9001", true);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(!snap[0].up);
        assert!(!snap[0].draining);
        assert!(snap[1].up);
        assert!(snap[1].draining);
    }

    #[test]
    fn probe_once_marks_unreachable_peers_down() {
        // A bound-then-dropped listener yields an address nothing
        // listens on.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr").to_string()
        };
        let fleet = vec![addr.clone()];
        let h = PeerHealth::new(&fleet, Duration::from_millis(50));
        for _ in 0..FAILURE_THRESHOLD {
            assert!(!probe_once(&h, &addr, Duration::from_millis(100)));
        }
        assert!(!h.available(&addr), "probes alone eject a dead peer");
        assert_eq!(h.ejections(), 1);
    }
}
