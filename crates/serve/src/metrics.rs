//! Service metrics registry and the `/metrics` text rendering.
//!
//! Counters are lock-free atomics; latency distributions reuse the
//! log-bucketed [`LatencyHistogram`] from `gmap-trace`, guarded by a
//! mutex (recording is one bucket increment — contention is negligible
//! next to the work being measured). The output format follows the
//! Prometheus text exposition conventions so the endpoint is scrapable,
//! but no client library is involved.

use crate::health::PeerStatus;
use gmap_trace::LatencyHistogram;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The service endpoints that report per-endpoint metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/profile`.
    Profile,
    /// `POST /v1/clone`.
    Clone,
    /// `POST /v1/evaluate`.
    Evaluate,
    /// `POST /v1/analyze` (answered on the connection thread).
    Analyze,
    /// `POST /v1/ingest` (streaming trace ingestion).
    Ingest,
    /// Everything else (`/healthz`, `/metrics`, unknown routes).
    Other,
}

impl Endpoint {
    fn label(self) -> &'static str {
        match self {
            Endpoint::Profile => "profile",
            Endpoint::Clone => "clone",
            Endpoint::Evaluate => "evaluate",
            Endpoint::Analyze => "analyze",
            Endpoint::Ingest => "ingest",
            Endpoint::Other => "other",
        }
    }
}

/// Per-endpoint request counters and latency distribution.
#[derive(Debug, Default)]
pub struct EndpointStats {
    requests: AtomicU64,
    errors: AtomicU64,
    latency: Mutex<LatencyHistogram>,
}

impl EndpointStats {
    fn record(&self, elapsed: Duration, status: u16) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        self.latency
            .lock()
            .expect("latency lock poisoned")
            .record(elapsed);
    }
}

/// Per-peer router counters, present only in router mode (see
/// [`Metrics::with_route`]).
#[derive(Debug)]
pub struct RouteMetrics {
    /// Requests forwarded to each peer, in ring listing order.
    forwards: Vec<(String, AtomicU64)>,
    /// Forward attempts moved to a successor replica after a transport
    /// failure (refused connection, reset, timeout).
    pub failovers: AtomicU64,
}

impl RouteMetrics {
    /// Creates zeroed counters for `peers`.
    pub fn new(peers: &[String]) -> RouteMetrics {
        RouteMetrics {
            forwards: peers
                .iter()
                .map(|p| (p.clone(), AtomicU64::new(0)))
                .collect(),
            failovers: AtomicU64::new(0),
        }
    }

    /// Counts one request forwarded to `peer` (a response was received,
    /// whatever its status). Unknown peers are ignored.
    pub fn record_forward(&self, peer: &str) {
        if let Some((_, counter)) = self.forwards.iter().find(|(p, _)| p == peer) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The forward count for one peer (tests and assertions).
    pub fn forwards_to(&self, peer: &str) -> u64 {
        self.forwards
            .iter()
            .find(|(p, _)| p == peer)
            .map_or(0, |(_, c)| c.load(Ordering::Relaxed))
    }

    /// Total forwards across all peers.
    pub fn forwards_total(&self) -> u64 {
        self.forwards
            .iter()
            .map(|(_, c)| c.load(Ordering::Relaxed))
            .sum()
    }
}

/// The service-wide metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    profile: EndpointStats,
    clone_op: EndpointStats,
    evaluate: EndpointStats,
    analyze: EndpointStats,
    ingest: EndpointStats,
    other: EndpointStats,
    /// Model-cache hits (`/v1/profile` served without re-profiling).
    pub cache_hits: AtomicU64,
    /// Model-cache misses (profile computed and stored).
    pub cache_misses: AtomicU64,
    /// Submissions refused with 429 because the queue was full.
    pub rejected_full: AtomicU64,
    /// Submissions refused with 503 during shutdown.
    pub rejected_shutdown: AtomicU64,
    /// Requests that hit their deadline and were answered 504.
    pub deadline_timeouts: AtomicU64,
    /// Specs rejected with 422 by the static-analysis admission gate
    /// (before ever entering the job queue).
    pub analyze_rejects: AtomicU64,
    /// Race findings (proven or potential, any severity) surfaced by the
    /// barrier-phase detector at the analyze and profile gates.
    pub analyze_races: AtomicU64,
    /// Jobs whose deadline expired while still queued: answered 504
    /// without the handler ever executing.
    pub jobs_shed: AtomicU64,
    /// Trace bytes consumed by the streaming `/v1/ingest` endpoint
    /// (body bytes, excluding chunk framing).
    pub ingest_bytes: AtomicU64,
    /// Trace streams fully received by `/v1/ingest`.
    pub ingest_streams: AtomicU64,
    /// Per-peer router counters; `None` outside router mode.
    pub route: Option<RouteMetrics>,
}

/// Point-in-time values that live outside the counter registry (queue
/// state, cache occupancy, fault-injection totals, peer health) and are
/// sampled by the caller at render time.
#[derive(Debug, Default, Clone)]
pub struct RuntimeStats {
    /// Jobs waiting in the queue.
    pub queue_depth: usize,
    /// Jobs currently executing on workers.
    pub jobs_in_flight: usize,
    /// Models resident in the memory tier.
    pub models_cached: usize,
    /// Configured memory-tier bound.
    pub cache_capacity: usize,
    /// Open client connections.
    pub active_connections: usize,
    /// Memory-tier evictions so far.
    pub cache_evictions: u64,
    /// Disk entries quarantined after integrity failures.
    pub cache_quarantined: u64,
    /// Worker-pool jobs that panicked (contained).
    pub worker_panics: u64,
    /// Faults injected by the fault-injection layer (0 when disabled).
    pub faults_injected: u64,
    /// Peer circuit breakers opened (Closed/HalfOpen → Open edges).
    pub peer_ejections: u64,
    /// Peer circuit breakers closed again after ejection.
    pub peer_recoveries: u64,
    /// Models successfully pushed to a replica-set peer.
    pub replication_sent: u64,
    /// Replication pushes that failed transport or were refused.
    pub replication_failed: u64,
    /// Replication work dropped because the bounded queue was full (or
    /// a `replicate_err` fault fired).
    pub replication_dropped: u64,
    /// Hints recorded for peers that were down at push time.
    pub hints_queued: u64,
    /// Hinted models successfully replayed to their recovered owner.
    pub hints_replayed: u64,
    /// Replica-held models pushed back toward their owner after an
    /// owner-side miss was served locally (read-repair).
    pub read_repairs: u64,
    /// Whether this replica is draining (gauge `gmap_draining`).
    pub draining: bool,
    /// Per-peer breaker/drain view (`gmap_peer_up`,
    /// `gmap_peer_draining` gauges); empty outside fleet mode.
    pub peer_states: Vec<PeerStatus>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Creates a registry with router counters for `peers`.
    pub fn with_route(peers: &[String]) -> Self {
        Metrics {
            route: Some(RouteMetrics::new(peers)),
            ..Metrics::default()
        }
    }

    fn endpoint(&self, which: Endpoint) -> &EndpointStats {
        match which {
            Endpoint::Profile => &self.profile,
            Endpoint::Clone => &self.clone_op,
            Endpoint::Evaluate => &self.evaluate,
            Endpoint::Analyze => &self.analyze,
            Endpoint::Ingest => &self.ingest,
            Endpoint::Other => &self.other,
        }
    }

    /// Records one finished request.
    pub fn record_request(&self, which: Endpoint, elapsed: Duration, status: u16) {
        self.endpoint(which).record(elapsed, status);
    }

    /// Renders the Prometheus-style text exposition. Gauges and
    /// externally-owned counters (queue state, cache occupancy, panic and
    /// fault totals) are sampled by the caller into [`RuntimeStats`].
    pub fn render(&self, rt: RuntimeStats) -> String {
        let mut out = String::with_capacity(2048);
        let endpoints = [
            Endpoint::Profile,
            Endpoint::Clone,
            Endpoint::Evaluate,
            Endpoint::Analyze,
            Endpoint::Ingest,
            Endpoint::Other,
        ];
        out.push_str("# TYPE gmap_requests_total counter\n");
        for e in endpoints {
            let _ = writeln!(
                out,
                "gmap_requests_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.endpoint(e).requests.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE gmap_request_errors_total counter\n");
        for e in endpoints {
            let _ = writeln!(
                out,
                "gmap_request_errors_total{{endpoint=\"{}\"}} {}",
                e.label(),
                self.endpoint(e).errors.load(Ordering::Relaxed)
            );
        }
        out.push_str("# TYPE gmap_request_latency_seconds summary\n");
        for e in endpoints {
            let hist = self
                .endpoint(e)
                .latency
                .lock()
                .expect("latency lock poisoned");
            if hist.count() == 0 {
                continue;
            }
            for (q, latency) in [
                ("0.5", hist.p50()),
                ("0.95", hist.p95()),
                ("0.99", hist.p99()),
            ] {
                let _ = writeln!(
                    out,
                    "gmap_request_latency_seconds{{endpoint=\"{}\",quantile=\"{}\"}} {:.9}",
                    e.label(),
                    q,
                    latency.as_secs_f64()
                );
            }
            let _ = writeln!(
                out,
                "gmap_request_latency_seconds_count{{endpoint=\"{}\"}} {}",
                e.label(),
                hist.count()
            );
        }
        for (name, value) in [
            (
                "gmap_cache_hits_total",
                self.cache_hits.load(Ordering::Relaxed),
            ),
            (
                "gmap_cache_misses_total",
                self.cache_misses.load(Ordering::Relaxed),
            ),
            (
                "gmap_queue_rejected_total",
                self.rejected_full.load(Ordering::Relaxed),
            ),
            (
                "gmap_shutdown_rejected_total",
                self.rejected_shutdown.load(Ordering::Relaxed),
            ),
            (
                "gmap_deadline_timeouts_total",
                self.deadline_timeouts.load(Ordering::Relaxed),
            ),
            (
                "gmap_analyze_rejects_total",
                self.analyze_rejects.load(Ordering::Relaxed),
            ),
            (
                "gmap_analyze_races_total",
                self.analyze_races.load(Ordering::Relaxed),
            ),
            (
                "gmap_jobs_shed_total",
                self.jobs_shed.load(Ordering::Relaxed),
            ),
            (
                "gmap_ingest_bytes_total",
                self.ingest_bytes.load(Ordering::Relaxed),
            ),
            (
                "gmap_ingest_streams_total",
                self.ingest_streams.load(Ordering::Relaxed),
            ),
            ("gmap_cache_evictions_total", rt.cache_evictions),
            ("gmap_cache_quarantined_total", rt.cache_quarantined),
            ("gmap_worker_panics_total", rt.worker_panics),
            ("gmap_faults_injected_total", rt.faults_injected),
            ("gmap_peer_ejections_total", rt.peer_ejections),
            ("gmap_peer_recoveries_total", rt.peer_recoveries),
            ("gmap_replication_total", rt.replication_sent),
            ("gmap_replication_failed_total", rt.replication_failed),
            ("gmap_replication_dropped_total", rt.replication_dropped),
            ("gmap_hints_queued_total", rt.hints_queued),
            ("gmap_hints_replayed_total", rt.hints_replayed),
            ("gmap_read_repairs_total", rt.read_repairs),
        ] {
            let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
        }
        if let Some(route) = &self.route {
            out.push_str("# TYPE gmap_route_forwards_total counter\n");
            for (peer, counter) in &route.forwards {
                let _ = writeln!(
                    out,
                    "gmap_route_forwards_total{{peer=\"{peer}\"}} {}",
                    counter.load(Ordering::Relaxed)
                );
            }
            let _ = writeln!(
                out,
                "# TYPE gmap_route_failovers_total counter\ngmap_route_failovers_total {}",
                route.failovers.load(Ordering::Relaxed)
            );
        }
        for (name, value) in [
            ("gmap_queue_depth", rt.queue_depth),
            ("gmap_jobs_in_flight", rt.jobs_in_flight),
            ("gmap_models_cached", rt.models_cached),
            ("gmap_cache_capacity", rt.cache_capacity),
            ("gmap_active_connections", rt.active_connections),
            ("gmap_draining", usize::from(rt.draining)),
        ] {
            let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
        }
        if !rt.peer_states.is_empty() {
            out.push_str("# TYPE gmap_peer_up gauge\n");
            for p in &rt.peer_states {
                let _ = writeln!(
                    out,
                    "gmap_peer_up{{peer=\"{}\"}} {}",
                    p.peer,
                    u8::from(p.up)
                );
            }
            out.push_str("# TYPE gmap_peer_draining gauge\n");
            for p in &rt.peer_states {
                let _ = writeln!(
                    out,
                    "gmap_peer_draining{{peer=\"{}\"}} {}",
                    p.peer,
                    u8::from(p.draining)
                );
            }
        }
        out
    }
}

/// Extracts the value of a metric line from a rendered exposition, for
/// tests and the CLI client.
pub fn scrape(rendered: &str, metric: &str) -> Option<f64> {
    rendered.lines().find_map(|line| {
        if line.starts_with('#') {
            return None;
        }
        line.strip_prefix(metric)?
            .strip_prefix(' ')?
            .trim()
            .parse()
            .ok()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_gauges() {
        let m = Metrics::new();
        m.record_request(Endpoint::Profile, Duration::from_millis(3), 200);
        m.record_request(Endpoint::Profile, Duration::from_millis(5), 400);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.rejected_full.fetch_add(7, Ordering::Relaxed);
        m.analyze_rejects.fetch_add(5, Ordering::Relaxed);
        m.analyze_races.fetch_add(4, Ordering::Relaxed);
        m.jobs_shed.fetch_add(3, Ordering::Relaxed);
        m.ingest_bytes.fetch_add(4096, Ordering::Relaxed);
        m.ingest_streams.fetch_add(2, Ordering::Relaxed);
        m.record_request(Endpoint::Ingest, Duration::from_millis(2), 200);
        let text = m.render(RuntimeStats {
            queue_depth: 4,
            jobs_in_flight: 1,
            models_cached: 3,
            cache_capacity: 16,
            active_connections: 9,
            cache_evictions: 6,
            cache_quarantined: 2,
            worker_panics: 1,
            faults_injected: 8,
            peer_ejections: 11,
            replication_sent: 12,
            hints_replayed: 13,
            read_repairs: 14,
            ..RuntimeStats::default()
        });
        assert!(text.contains("gmap_requests_total{endpoint=\"profile\"} 2"));
        assert!(text.contains("gmap_request_errors_total{endpoint=\"profile\"} 1"));
        assert!(text.contains("gmap_request_latency_seconds_count{endpoint=\"profile\"} 2"));
        assert_eq!(scrape(&text, "gmap_cache_hits_total"), Some(2.0));
        assert_eq!(scrape(&text, "gmap_queue_rejected_total"), Some(7.0));
        assert_eq!(scrape(&text, "gmap_analyze_rejects_total"), Some(5.0));
        assert_eq!(scrape(&text, "gmap_analyze_races_total"), Some(4.0));
        assert_eq!(scrape(&text, "gmap_jobs_shed_total"), Some(3.0));
        assert!(text.contains("gmap_requests_total{endpoint=\"ingest\"} 1"));
        assert_eq!(scrape(&text, "gmap_ingest_bytes_total"), Some(4096.0));
        assert_eq!(scrape(&text, "gmap_ingest_streams_total"), Some(2.0));
        assert_eq!(scrape(&text, "gmap_cache_evictions_total"), Some(6.0));
        assert_eq!(scrape(&text, "gmap_cache_quarantined_total"), Some(2.0));
        assert_eq!(scrape(&text, "gmap_worker_panics_total"), Some(1.0));
        assert_eq!(scrape(&text, "gmap_faults_injected_total"), Some(8.0));
        assert_eq!(scrape(&text, "gmap_queue_depth"), Some(4.0));
        assert_eq!(scrape(&text, "gmap_jobs_in_flight"), Some(1.0));
        assert_eq!(scrape(&text, "gmap_models_cached"), Some(3.0));
        assert_eq!(scrape(&text, "gmap_cache_capacity"), Some(16.0));
        assert_eq!(scrape(&text, "gmap_active_connections"), Some(9.0));
        assert_eq!(scrape(&text, "gmap_peer_ejections_total"), Some(11.0));
        assert_eq!(scrape(&text, "gmap_replication_total"), Some(12.0));
        assert_eq!(scrape(&text, "gmap_hints_replayed_total"), Some(13.0));
        assert_eq!(scrape(&text, "gmap_read_repairs_total"), Some(14.0));
        assert_eq!(scrape(&text, "gmap_draining"), Some(0.0));
    }

    #[test]
    fn peer_gauges_render_when_a_fleet_is_tracked() {
        let m = Metrics::new();
        let rt = RuntimeStats {
            draining: true,
            peer_states: vec![
                PeerStatus {
                    peer: "127.0.0.1:9001".into(),
                    up: true,
                    draining: false,
                },
                PeerStatus {
                    peer: "127.0.0.1:9002".into(),
                    up: false,
                    draining: true,
                },
            ],
            ..RuntimeStats::default()
        };
        let text = m.render(rt);
        assert_eq!(scrape(&text, "gmap_draining"), Some(1.0));
        assert_eq!(
            scrape(&text, "gmap_peer_up{peer=\"127.0.0.1:9001\"}"),
            Some(1.0)
        );
        assert_eq!(
            scrape(&text, "gmap_peer_up{peer=\"127.0.0.1:9002\"}"),
            Some(0.0)
        );
        assert_eq!(
            scrape(&text, "gmap_peer_draining{peer=\"127.0.0.1:9002\"}"),
            Some(1.0)
        );
        // Outside fleet mode the per-peer families are absent.
        let plain = Metrics::new().render(RuntimeStats::default());
        assert!(!plain.contains("gmap_peer_up"));
    }

    #[test]
    fn quantiles_appear_once_latency_is_recorded() {
        let m = Metrics::new();
        let empty = m.render(RuntimeStats::default());
        assert!(!empty.contains("quantile"));
        m.record_request(Endpoint::Evaluate, Duration::from_micros(800), 200);
        let text = m.render(RuntimeStats::default());
        assert!(
            text.contains("gmap_request_latency_seconds{endpoint=\"evaluate\",quantile=\"0.5\"}")
        );
    }

    #[test]
    fn route_counters_render_per_peer() {
        let peers = vec!["127.0.0.1:9001".to_string(), "127.0.0.1:9002".to_string()];
        let m = Metrics::with_route(&peers);
        let route = m.route.as_ref().expect("router registry");
        route.record_forward("127.0.0.1:9001");
        route.record_forward("127.0.0.1:9001");
        route.record_forward("127.0.0.1:9002");
        route.record_forward("10.9.9.9:1"); // unknown peer: ignored
        route.failovers.fetch_add(1, Ordering::Relaxed);
        assert_eq!(route.forwards_to("127.0.0.1:9001"), 2);
        assert_eq!(route.forwards_total(), 3);
        let text = m.render(RuntimeStats::default());
        assert_eq!(
            scrape(&text, "gmap_route_forwards_total{peer=\"127.0.0.1:9001\"}"),
            Some(2.0)
        );
        assert_eq!(
            scrape(&text, "gmap_route_forwards_total{peer=\"127.0.0.1:9002\"}"),
            Some(1.0)
        );
        assert_eq!(scrape(&text, "gmap_route_failovers_total"), Some(1.0));
        // Outside router mode the family is absent entirely.
        let plain = Metrics::new().render(RuntimeStats::default());
        assert!(!plain.contains("gmap_route_"));
    }

    #[test]
    fn scrape_ignores_prefixed_names() {
        // `gmap_cache_hits_total` must not match `gmap_cache_hits_total_foo`.
        let text = "gmap_cache_hits_total_foo 9\ngmap_cache_hits_total 3\n";
        assert_eq!(scrape(text, "gmap_cache_hits_total"), Some(3.0));
    }
}
