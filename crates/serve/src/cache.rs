//! Content-addressed model store: a bounded in-memory LRU tier with an
//! optional checksummed on-disk tier.
//!
//! Models are keyed by the content hash of the *workload spec* that
//! produced them (see [`crate::handlers`]), so a repeated `/v1/profile`
//! request is answered from the cache without re-profiling. Entries are
//! immutable once inserted — a key fully determines its model — which is
//! what makes the lock-then-compute-then-insert race benign: two racing
//! writers insert byte-identical values.
//!
//! # Memory tier
//!
//! The memory tier holds at most `capacity` entries. When full, the
//! least-recently-used entry is evicted (ties broken by key, so eviction
//! order is a deterministic function of the access history). Evictions
//! are counted and surfaced as `gmap_cache_evictions_total`.
//!
//! # Disk tier integrity
//!
//! Disk entries are stored as `<dir>/<key>.json` in a two-part format:
//! the first line is the content checksum of the payload (the same
//! FNV-128 digest used for cache keys), and the remainder is the
//! canonical model JSON. On read the checksum is re-derived and compared;
//! any mismatch — torn write, bit rot, truncation, or a legacy
//! un-checksummed file — quarantines the entry by renaming it to
//! `<key>.json.quarantine`. A quarantined entry is never served and never
//! retried; the next insert under that key writes a fresh file. Writes
//! are atomic (temp file + rename) and leftover `*.json.tmp` files from
//! a crashed writer are deleted when the store opens.

use crate::faults::{FaultInjector, FaultKind};
use gmap_core::application::AppProfile;
use gmap_core::cachekey::content_key;
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on the in-memory tier when none is configured.
pub const DEFAULT_MEM_CAPACITY: usize = 256;

/// An immutable cached model plus its canonical JSON rendering.
#[derive(Debug)]
pub struct StoredModel {
    /// The profiled application model.
    pub model: AppProfile,
    /// Canonical compact JSON of `model` (what the disk tier holds).
    pub json: String,
}

struct MemEntry {
    stored: Arc<StoredModel>,
    /// Logical access time: bumped on every hit, used for LRU eviction.
    tick: u64,
}

struct MemTier {
    map: HashMap<String, MemEntry>,
    clock: u64,
}

/// The content-addressed model cache.
pub struct ModelStore {
    mem: Mutex<MemTier>,
    capacity: usize,
    disk_dir: Option<PathBuf>,
    faults: Option<Arc<FaultInjector>>,
    evictions: AtomicU64,
    quarantined: AtomicU64,
    recovered_tmp: AtomicU64,
}

impl ModelStore {
    /// Creates a store with the default memory bound; with `Some(dir)`,
    /// entries are persisted as `<dir>/<key>.json` and survive restarts.
    ///
    /// # Errors
    ///
    /// Fails if the disk directory cannot be created.
    pub fn new(disk_dir: Option<PathBuf>) -> io::Result<Self> {
        Self::with_config(disk_dir, DEFAULT_MEM_CAPACITY, None)
    }

    /// Creates a store with an explicit memory-tier capacity and an
    /// optional fault injector driving disk-tier failures.
    ///
    /// # Errors
    ///
    /// Fails if the disk directory cannot be created.
    pub fn with_config(
        disk_dir: Option<PathBuf>,
        capacity: usize,
        faults: Option<Arc<FaultInjector>>,
    ) -> io::Result<Self> {
        let store = ModelStore {
            mem: Mutex::new(MemTier {
                map: HashMap::new(),
                clock: 0,
            }),
            capacity: capacity.max(1),
            disk_dir,
            faults,
            evictions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            recovered_tmp: AtomicU64::new(0),
        };
        if let Some(dir) = &store.disk_dir {
            std::fs::create_dir_all(dir)?;
            store.recover_torn_writes(dir)?;
        }
        Ok(store)
    }

    /// Deletes `*.json.tmp` leftovers from a writer that died mid-publish.
    /// The rename in [`ModelStore::insert`] is atomic, so a temp file can
    /// only ever be an unpublished (and possibly truncated) write.
    fn recover_torn_writes(&self, dir: &Path) -> io::Result<()> {
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            let is_tmp = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".json.tmp"));
            if is_tmp && std::fs::remove_file(&path).is_ok() {
                self.recovered_tmp.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Number of models resident in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("store lock poisoned").map.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured memory-tier bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Memory-tier entries evicted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Disk entries quarantined after failing their integrity check.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Torn temp files removed during startup recovery.
    pub fn recovered_tmp(&self) -> u64 {
        self.recovered_tmp.load(Ordering::Relaxed)
    }

    fn disk_fault(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.fires(FaultKind::DiskErr))
    }

    fn short_write(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.fires(FaultKind::ShortWrite))
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are hex strings we minted ourselves, but never trust a
        // client-supplied id as a path component.
        if !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }

    /// Inserts into the memory tier under the lock, evicting the LRU
    /// entry first if the tier is full. An existing entry wins, so racing
    /// inserts converge on one `Arc`.
    fn insert_mem(&self, key: &str, entry: Arc<StoredModel>) -> Arc<StoredModel> {
        let mut tier = self.mem.lock().expect("store lock poisoned");
        tier.clock += 1;
        let tick = tier.clock;
        if let Some(existing) = tier.map.get_mut(key) {
            existing.tick = tick;
            return Arc::clone(&existing.stored);
        }
        if tier.map.len() >= self.capacity {
            // LRU victim: min by (tick, key). The key tie-break makes the
            // choice a total order, so the scan is independent of HashMap
            // iteration order (allowlisted for the determinism lint).
            let mut victim: Option<(u64, String)> = None;
            for (k, e) in &tier.map {
                let better = match &victim {
                    None => true,
                    Some((tick, key)) => (e.tick, k) < (*tick, key),
                };
                if better {
                    victim = Some((e.tick, k.clone()));
                }
            }
            if let Some((_, victim)) = victim {
                tier.map.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        tier.map.insert(
            key.to_string(),
            MemEntry {
                stored: Arc::clone(&entry),
                tick,
            },
        );
        entry
    }

    /// Renames a failed-integrity disk entry out of the serving path.
    fn quarantine(&self, path: &Path) {
        let target = path.with_extension("json.quarantine");
        if std::fs::rename(path, &target).is_ok() {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Reads and integrity-checks one disk entry. Returns `None` (and
    /// quarantines the file) on any corruption.
    fn read_disk(&self, path: &Path) -> Option<StoredModel> {
        if self.disk_fault() {
            // Injected IO error: behaves as a miss, never as bad data.
            return None;
        }
        let raw = std::fs::read_to_string(path).ok()?;
        let parsed = raw.split_once('\n').and_then(|(sum, json)| {
            if content_key(json) == sum {
                AppProfile::from_json(json)
                    .ok()
                    .map(|model| (model, json.to_string()))
            } else {
                None
            }
        });
        match parsed {
            Some((model, json)) => Some(StoredModel { model, json }),
            None => {
                self.quarantine(path);
                None
            }
        }
    }

    /// Every key this store holds, across both tiers: memory-resident
    /// entries plus `<key>.json` disk entries, deduplicated and sorted
    /// (so enumeration order is deterministic regardless of `HashMap`
    /// iteration order). Used by drain streaming and hint replay, which
    /// must not miss entries that were evicted from memory but survive
    /// on disk.
    pub fn keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = self
            .mem
            .lock()
            .expect("store lock poisoned")
            .map
            .keys()
            .cloned()
            .collect();
        if let Some(dir) = &self.disk_dir {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let name = entry.file_name();
                    let Some(name) = name.to_str() else { continue };
                    if let Some(stem) = name.strip_suffix(".json") {
                        if !stem.is_empty() && stem.chars().all(|c| c.is_ascii_hexdigit()) {
                            keys.push(stem.to_string());
                        }
                    }
                }
            }
        }
        keys.sort_unstable();
        keys.dedup();
        keys
    }

    /// Looks a model up by key: memory first, then the disk tier (a disk
    /// hit is promoted into memory, subject to the same capacity bound).
    pub fn get(&self, key: &str) -> Option<Arc<StoredModel>> {
        {
            let mut tier = self.mem.lock().expect("store lock poisoned");
            tier.clock += 1;
            let tick = tier.clock;
            if let Some(hit) = tier.map.get_mut(key) {
                hit.tick = tick;
                return Some(Arc::clone(&hit.stored));
            }
        }
        let path = self.disk_path(key)?;
        if !path.exists() {
            return None;
        }
        let entry = Arc::new(self.read_disk(&path)?);
        Some(self.insert_mem(key, entry))
    }

    /// Inserts a model under `key`, writing through to disk when
    /// configured. Returns the stored entry (an existing entry wins, so
    /// concurrent racing inserts converge on one `Arc`).
    pub fn insert(&self, key: &str, model: AppProfile) -> Arc<StoredModel> {
        let json = model.to_json();
        let entry = Arc::new(StoredModel { model, json });
        let stored = self.insert_mem(key, entry);
        if let Some(path) = self.disk_path(key) {
            if !path.exists() && !self.disk_fault() {
                // Atomic publish: write a temp file, then rename. An
                // injected short write publishes a torn payload on
                // purpose — the checksum catches it at read time.
                let payload = format!("{}\n{}", content_key(&stored.json), stored.json);
                let bytes = if self.short_write() {
                    &payload.as_bytes()[..payload.len() / 2]
                } else {
                    payload.as_bytes()
                };
                let tmp = path.with_extension("json.tmp");
                if std::fs::write(&tmp, bytes).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
        }
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultSpec;
    use gmap_core::profiler::ProfilerConfig;
    use gmap_gpu::app::Application;
    use gmap_gpu::workloads::{self, Scale};

    fn model(name: &str) -> AppProfile {
        let kernel = workloads::by_name(name, Scale::Tiny).expect("known workload");
        gmap_core::profile_application(&Application::single(kernel), &ProfilerConfig::default())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gmap-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_round_trips() {
        let store = ModelStore::new(None).expect("no disk tier to create");
        assert!(store.is_empty());
        assert!(store.get("00ff").is_none());
        let m = model("kmeans");
        let stored = store.insert("00ff", m.clone());
        assert_eq!(stored.model, m);
        assert_eq!(store.len(), 1);
        let hit = store.get("00ff").expect("present after insert");
        assert!(Arc::ptr_eq(
            &hit,
            &store.get("00ff").expect("still present")
        ));
        assert_eq!(hit.json, m.to_json());
    }

    #[test]
    fn disk_tier_survives_a_fresh_store() {
        let dir = temp_dir("persist");
        let m = model("bfs");
        {
            let store = ModelStore::new(Some(dir.clone())).expect("create dir");
            store.insert("abc123", m.clone());
        }
        let fresh = ModelStore::new(Some(dir.clone())).expect("reopen dir");
        assert!(fresh.is_empty(), "memory tier starts cold");
        let hit = fresh.get("abc123").expect("disk tier hit");
        assert_eq!(hit.model, m);
        assert_eq!(fresh.len(), 1, "disk hit promoted to memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_never_touch_the_filesystem() {
        let dir = temp_dir("hostile");
        let store = ModelStore::new(Some(dir.clone())).expect("create dir");
        assert!(store.get("../../etc/passwd").is_none());
        store.insert("../escape", model("kmeans"));
        assert!(!dir.join("../escape.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_is_bounded_and_deterministic() {
        let store = ModelStore::with_config(None, 2, None).expect("memory only");
        let m = model("kmeans");
        store.insert("aa", m.clone());
        store.insert("bb", m.clone());
        assert_eq!(store.len(), 2);
        // Touch "aa" so "bb" becomes the LRU victim.
        store.get("aa").expect("present");
        store.insert("cc", m.clone());
        assert_eq!(store.len(), 2, "capacity never exceeded");
        assert_eq!(store.evictions(), 1);
        assert!(store.get("bb").is_none(), "LRU entry evicted");
        assert!(store.get("aa").is_some());
        assert!(store.get("cc").is_some());
    }

    #[test]
    fn corrupt_disk_entries_are_quarantined_not_served() {
        let dir = temp_dir("corrupt");
        let store = ModelStore::new(Some(dir.clone())).expect("create dir");
        let m = model("bfs");
        store.insert("deadbeef", m.clone());

        // Flip a payload byte on disk; the checksum line no longer matches.
        let path = dir.join("deadbeef.json");
        let mut raw = std::fs::read_to_string(&path).expect("entry on disk");
        let flip = raw.len() - 2;
        raw.replace_range(flip..=flip, "~");
        std::fs::write(&path, raw).expect("rewrite");

        let fresh = ModelStore::new(Some(dir.clone())).expect("reopen dir");
        assert!(fresh.get("deadbeef").is_none(), "corrupt entry not served");
        assert_eq!(fresh.quarantined(), 1);
        assert!(!path.exists(), "entry moved out of the serving path");
        assert!(dir.join("deadbeef.json.quarantine").exists());

        // A re-insert repopulates the slot cleanly.
        fresh.insert("deadbeef", m.clone());
        let reopened = ModelStore::new(Some(dir.clone())).expect("reopen again");
        assert_eq!(reopened.get("deadbeef").expect("clean entry").model, m);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_enumerates_both_tiers_without_duplicates() {
        let dir = temp_dir("keys");
        let m = model("kmeans");
        {
            let store = ModelStore::new(Some(dir.clone())).expect("create dir");
            store.insert("aa11", m.clone());
            store.insert("bb22", m.clone());
        }
        // Fresh store: both keys live only on disk.
        let store = ModelStore::with_config(Some(dir.clone()), 2, None).expect("reopen dir");
        assert_eq!(store.keys(), vec!["aa11".to_string(), "bb22".to_string()]);
        // Promote one into memory: still no duplicate in the listing.
        store.get("aa11").expect("disk hit");
        assert_eq!(store.keys(), vec!["aa11".to_string(), "bb22".to_string()]);
        // A memory-only entry (hostile key never hits disk) still lists.
        let mem_only = ModelStore::new(None).expect("memory store");
        mem_only.insert("cc33", m.clone());
        assert_eq!(mem_only.keys(), vec!["cc33".to_string()]);
        // Quarantine/tmp leftovers are not keys.
        std::fs::write(dir.join("dd44.json.tmp"), "x").expect("tmp");
        std::fs::write(dir.join("ee55.json.quarantine"), "x").expect("q");
        assert_eq!(store.keys(), vec!["aa11".to_string(), "bb22".to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tmp_files_are_removed_at_startup() {
        let dir = temp_dir("torn");
        std::fs::create_dir_all(&dir).expect("mkdir");
        std::fs::write(dir.join("abcd.json.tmp"), "{\"half\":").expect("plant torn write");
        let store = ModelStore::new(Some(dir.clone())).expect("open with recovery");
        assert_eq!(store.recovered_tmp(), 1);
        assert!(!dir.join("abcd.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_short_writes_never_serve_bad_data() {
        let dir = temp_dir("shortwrite");
        let faults = Arc::new(FaultInjector::new(
            FaultSpec::quiet(11).with(FaultKind::ShortWrite, 1.0),
        ));
        faults.set_armed(true);
        let store = ModelStore::with_config(
            Some(dir.clone()),
            DEFAULT_MEM_CAPACITY,
            Some(faults.clone()),
        )
        .expect("create dir");
        let m = model("kmeans");
        store.insert("f00d", m.clone());
        assert!(faults.injected(FaultKind::ShortWrite) >= 1);

        // The torn entry is on disk; a fresh store must refuse to serve it.
        let fresh = ModelStore::new(Some(dir.clone())).expect("reopen dir");
        assert!(fresh.get("f00d").is_none(), "torn entry not served");
        assert_eq!(fresh.quarantined(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
