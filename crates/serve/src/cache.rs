//! Content-addressed model store: in-memory map with an optional
//! write-through on-disk tier.
//!
//! Models are keyed by the content hash of the *workload spec* that
//! produced them (see [`crate::handlers`]), so a repeated `/v1/profile`
//! request is answered from the cache without re-profiling. Entries are
//! immutable once inserted — a key fully determines its model — which is
//! what makes the lock-then-compute-then-insert race benign: two racing
//! writers insert byte-identical values.

use gmap_core::application::AppProfile;
use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// An immutable cached model plus its canonical JSON rendering.
#[derive(Debug)]
pub struct StoredModel {
    /// The profiled application model.
    pub model: AppProfile,
    /// Canonical compact JSON of `model` (what the disk tier holds).
    pub json: String,
}

/// The content-addressed model cache.
pub struct ModelStore {
    mem: Mutex<HashMap<String, Arc<StoredModel>>>,
    disk_dir: Option<PathBuf>,
}

impl ModelStore {
    /// Creates a store; with `Some(dir)`, entries are persisted as
    /// `<dir>/<key>.json` and survive restarts.
    ///
    /// # Errors
    ///
    /// Fails if the disk directory cannot be created.
    pub fn new(disk_dir: Option<PathBuf>) -> io::Result<Self> {
        if let Some(dir) = &disk_dir {
            std::fs::create_dir_all(dir)?;
        }
        Ok(ModelStore {
            mem: Mutex::new(HashMap::new()),
            disk_dir,
        })
    }

    /// Number of models resident in memory.
    pub fn len(&self) -> usize {
        self.mem.lock().expect("store lock poisoned").len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn disk_path(&self, key: &str) -> Option<PathBuf> {
        // Keys are hex strings we minted ourselves, but never trust a
        // client-supplied id as a path component.
        if !key.chars().all(|c| c.is_ascii_hexdigit()) {
            return None;
        }
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{key}.json")))
    }

    /// Looks a model up by key: memory first, then the disk tier (a disk
    /// hit is promoted into memory).
    pub fn get(&self, key: &str) -> Option<Arc<StoredModel>> {
        if let Some(hit) = self
            .mem
            .lock()
            .expect("store lock poisoned")
            .get(key)
            .cloned()
        {
            return Some(hit);
        }
        let path = self.disk_path(key)?;
        let json = std::fs::read_to_string(path).ok()?;
        let model = AppProfile::from_json(&json).ok()?;
        let entry = Arc::new(StoredModel { model, json });
        self.mem
            .lock()
            .expect("store lock poisoned")
            .entry(key.to_string())
            .or_insert_with(|| Arc::clone(&entry));
        Some(entry)
    }

    /// Inserts a model under `key`, writing through to disk when
    /// configured. Returns the stored entry (an existing entry wins, so
    /// concurrent racing inserts converge on one `Arc`).
    pub fn insert(&self, key: &str, model: AppProfile) -> Arc<StoredModel> {
        let json = model.to_json();
        let entry = Arc::new(StoredModel { model, json });
        let stored = Arc::clone(
            self.mem
                .lock()
                .expect("store lock poisoned")
                .entry(key.to_string())
                .or_insert_with(|| Arc::clone(&entry)),
        );
        if let Some(path) = self.disk_path(key) {
            if !path.exists() {
                // Atomic publish: write a temp file, then rename.
                let tmp = path.with_extension("json.tmp");
                if std::fs::write(&tmp, &stored.json).is_ok() {
                    let _ = std::fs::rename(&tmp, &path);
                }
            }
        }
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_core::profiler::ProfilerConfig;
    use gmap_gpu::app::Application;
    use gmap_gpu::workloads::{self, Scale};

    fn model(name: &str) -> AppProfile {
        let kernel = workloads::by_name(name, Scale::Tiny).expect("known workload");
        gmap_core::profile_application(&Application::single(kernel), &ProfilerConfig::default())
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gmap-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_tier_round_trips() {
        let store = ModelStore::new(None).expect("no disk tier to create");
        assert!(store.is_empty());
        assert!(store.get("00ff").is_none());
        let m = model("kmeans");
        let stored = store.insert("00ff", m.clone());
        assert_eq!(stored.model, m);
        assert_eq!(store.len(), 1);
        let hit = store.get("00ff").expect("present after insert");
        assert!(Arc::ptr_eq(
            &hit,
            &store.get("00ff").expect("still present")
        ));
        assert_eq!(hit.json, m.to_json());
    }

    #[test]
    fn disk_tier_survives_a_fresh_store() {
        let dir = temp_dir("persist");
        let m = model("bfs");
        {
            let store = ModelStore::new(Some(dir.clone())).expect("create dir");
            store.insert("abc123", m.clone());
        }
        let fresh = ModelStore::new(Some(dir.clone())).expect("reopen dir");
        assert!(fresh.is_empty(), "memory tier starts cold");
        let hit = fresh.get("abc123").expect("disk tier hit");
        assert_eq!(hit.model, m);
        assert_eq!(fresh.len(), 1, "disk hit promoted to memory");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hostile_keys_never_touch_the_filesystem() {
        let dir = temp_dir("hostile");
        let store = ModelStore::new(Some(dir.clone())).expect("create dir");
        assert!(store.get("../../etc/passwd").is_none());
        store.insert("../escape", model("kmeans"));
        assert!(!dir.join("../escape.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
