//! Wire types for the `gmap serve` JSON API.
//!
//! Every request/response body is a plain struct rendered through the
//! workspace serde stack, so the canonical compact encoding produced by
//! [`gmap_core::cachekey::canonical_json`] is also the exact byte
//! sequence the service emits. Response *statistics* are deterministic
//! functions of the request and the model — the integration tests compare
//! them byte-for-byte against direct library calls.

use gmap_analyze::StaticReport;
use gmap_core::application::AppProfile;
use gmap_core::fidelity::FidelityClass;
use gmap_gpu::kernel::KernelDesc;
use gmap_gpu::workloads::Scale;
use gmap_memsim::ReplacementPolicy;
use serde::{Deserialize, Serialize};

/// `POST /v1/profile` body: profile a named workload — or an inline
/// kernel spec — into an application model.
///
/// Exactly one of `workload` and `spec` must be present. Inline specs
/// pass through the static-analysis admission gate *before* entering the
/// job queue: correctness errors are answered 422 on the connection
/// thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileRequest {
    /// Workload name from [`gmap_gpu::workloads::NAMES`].
    pub workload: Option<String>,
    /// Workload scale: `"tiny"`, `"small"`, or `"default"` (the default).
    /// Only meaningful with `workload`.
    pub scale: Option<String>,
    /// An inline kernel spec, profiled as a single-kernel application.
    pub spec: Option<KernelDesc>,
}

/// `POST /v1/analyze` body: statically analyze a named workload or an
/// inline kernel spec without profiling it. Answered on the connection
/// thread — the analyzer never executes the kernel, so it needs no
/// worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeRequest {
    /// Workload name from [`gmap_gpu::workloads::NAMES`].
    pub workload: Option<String>,
    /// Workload scale (with `workload` only).
    pub scale: Option<String>,
    /// An inline kernel spec.
    pub spec: Option<KernelDesc>,
}

/// `POST /v1/analyze` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnalyzeResponse {
    /// Kernel name.
    pub name: String,
    /// Whether the admission gate would accept this spec (no error
    /// findings; warnings do not block admission).
    pub admissible: bool,
    /// Number of error findings.
    pub errors: usize,
    /// Number of warning findings.
    pub warnings: usize,
    /// The full static report (sites + findings).
    pub report: StaticReport,
}

/// Deterministic summary statistics of a profiled application model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileStats {
    /// Application name.
    pub name: String,
    /// Number of profiled kernels.
    pub kernels: usize,
    /// Static memory-instruction slots per kernel.
    pub slots: Vec<usize>,
    /// Fidelity class per kernel (§5 self-check).
    pub fidelity: Vec<FidelityClass>,
    /// Content hash of the model itself (not of the workload spec).
    pub content_key: String,
}

/// `POST /v1/profile` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileResponse {
    /// Content-addressed model id (hash of the canonical workload spec).
    pub model_id: String,
    /// Whether the model was served from the cache.
    pub cached: bool,
    /// Deterministic model statistics.
    pub stats: ProfileStats,
}

/// Parsed query parameters of `POST /v1/ingest`.
///
/// Ingest carries the launch geometry in the query string because the
/// body *is* the raw trace (text or binary), streamed and never
/// materialized — there is no JSON envelope to put parameters in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestQuery {
    /// Workload name for the resulting model (default `"ingest"`).
    pub name: String,
    /// Blocks per grid.
    pub grid: u32,
    /// Threads per block.
    pub block: u32,
}

/// Parses the query string of an ingest request path
/// (`/v1/ingest?grid=2&block=64&name=wl`).
///
/// # Errors
///
/// 400 for missing/zero `grid` or `block`, unparseable values, or
/// unknown parameters.
pub fn parse_ingest_query(path: &str) -> Result<IngestQuery, ApiError> {
    let query = path.split_once('?').map_or("", |(_, q)| q);
    let mut name = None;
    let mut grid = None;
    let mut block = None;
    for pair in query.split('&').filter(|p| !p.is_empty()) {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| ApiError::bad_request(format!("bad query parameter {pair:?}")))?;
        let parse_u32 = |key: &str| {
            value.parse::<u32>().map_err(|e| {
                ApiError::bad_request(format!("bad value for {key:?}: {value:?}: {e}"))
            })
        };
        match key {
            "name" => name = Some(value.to_string()),
            "grid" => grid = Some(parse_u32("grid")?),
            "block" => block = Some(parse_u32("block")?),
            other => {
                return Err(ApiError::bad_request(format!(
                    "unknown query parameter {other:?} (expected grid, block, name)"
                )))
            }
        }
    }
    let grid =
        grid.ok_or_else(|| ApiError::bad_request("missing required query parameter \"grid\""))?;
    let block =
        block.ok_or_else(|| ApiError::bad_request("missing required query parameter \"block\""))?;
    if grid == 0 || block == 0 {
        return Err(ApiError::bad_request("grid and block must be positive"));
    }
    Ok(IngestQuery {
        name: name.unwrap_or_else(|| "ingest".into()),
        grid,
        block,
    })
}

/// `POST /v1/ingest` response: the profiled model plus the streaming
/// pass's classification report and counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IngestResponse {
    /// Content-addressed model id (hash of the resulting model itself —
    /// two traces producing identical models share an id).
    pub model_id: String,
    /// Deterministic model statistics (same shape as `/v1/profile`).
    pub stats: ProfileStats,
    /// Heat-map + per-PC classification report from the streaming pass.
    pub report: gmap_ingest::TraceReport,
    /// Ingest counters (bytes, entries, peak buffered entries, ...).
    pub ingest: gmap_ingest::IngestStats,
}

/// `POST /v1/clone` body: synthesize proxy streams from a cached model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloneRequest {
    /// Model id returned by `/v1/profile`.
    pub model_id: String,
    /// Miniaturization factor in `(0, 1]`-ish (default `1.0`; values
    /// above 1 upscale).
    pub factor: Option<f64>,
    /// Clone-generator seed (default [`DEFAULT_SEED`]).
    pub seed: Option<u64>,
}

/// Synthetic-trace statistics for one cloned kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelCloneStats {
    /// Kernel name.
    pub kernel: String,
    /// Number of generated warp streams.
    pub warps: usize,
    /// Coalesced memory instructions across all warps.
    pub accesses: u64,
    /// Read instructions.
    pub reads: u64,
    /// Write instructions.
    pub writes: u64,
    /// Cacheline transactions (post-coalescing).
    pub lines: u64,
    /// Threadblock barrier events.
    pub syncs: u64,
}

/// `POST /v1/clone` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloneResponse {
    /// Model id the clone was generated from.
    pub model_id: String,
    /// Effective miniaturization factor.
    pub factor: f64,
    /// Effective generator seed.
    pub seed: u64,
    /// Per-kernel synthetic trace statistics.
    pub kernels: Vec<KernelCloneStats>,
}

/// An L1 stride-prefetcher attachment for a grid point (fig6c-shaped
/// sweeps). Only meaningful on `"l1"` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StridePoint {
    /// PC-indexed table entries (power of two, at most 4096).
    pub table: u32,
    /// Lines fetched per trigger (1–32).
    pub degree: u32,
    /// Lines ahead of the demand stride (default 1).
    pub distance: Option<u32>,
    /// Consecutive same-stride observations before firing (default 2).
    pub confidence: Option<u32>,
}

/// An L2 stream-prefetcher attachment for a grid point (fig6d-shaped
/// sweeps). Only meaningful on `"l2"` points.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamPoint {
    /// Concurrently tracked streams (1–256, default 16).
    pub streams: Option<u32>,
    /// Lines a miss may deviate and still extend a stream (1–1024).
    pub window: u32,
    /// Lines fetched per stream hit (1–32).
    pub degree: u32,
}

/// One point of an evaluation grid: a cache configuration applied to the
/// baseline hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridPoint {
    /// Which level to reconfigure: `"l1"` (default) or `"l2"`.
    pub level: Option<String>,
    /// Capacity in KiB.
    pub size_kb: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes (default 128).
    pub line: Option<u64>,
    /// Replacement policy: `"lru"` (default), `"fifo"`, `"plru"`, or
    /// `"random"`.
    pub policy: Option<String>,
    /// Optional L1 stride prefetcher (requires `level` = `"l1"`).
    pub stride_prefetch: Option<StridePoint>,
    /// Optional L2 stream prefetcher (requires `level` = `"l2"`).
    pub stream_prefetch: Option<StreamPoint>,
}

/// `POST /v1/evaluate` body: run a hierarchy-config grid against a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateRequest {
    /// Model id returned by `/v1/profile`.
    pub model_id: String,
    /// Kernel index within the model (default 0).
    pub kernel: Option<usize>,
    /// Metric: `"l1_miss_pct"` (default) or `"l2_miss_pct"`.
    pub metric: Option<String>,
    /// Simulation + clone seed (default [`DEFAULT_SEED`]).
    pub seed: Option<u64>,
    /// The configuration grid (must be non-empty).
    pub grid: Vec<GridPoint>,
}

/// `POST /v1/evaluate` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluateResponse {
    /// Model id that was evaluated.
    pub model_id: String,
    /// Kernel index that was evaluated.
    pub kernel: usize,
    /// Metric name echoed back.
    pub metric: String,
    /// Whether the single-pass stack-distance engine handled the grid.
    pub single_pass: bool,
    /// Metric value per grid point, in request order.
    pub values: Vec<f64>,
}

/// `POST /v1/replicate` body: an internal fleet endpoint carrying one
/// content-addressed model from a peer. The receiver validates the id's
/// shape (32 hex chars, the only keys this fleet mints) and stores the
/// entry idempotently — entries are immutable, so racing pushes
/// converge byte-identically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicateRequest {
    /// Content-addressed model id the sender stored this model under.
    pub model_id: String,
    /// The full application model.
    pub model: AppProfile,
}

/// `POST /v1/replicate` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicateResponse {
    /// The model id echoed back.
    pub model_id: String,
    /// `true` when the push created a new local entry; `false` when the
    /// entry already existed (replication is idempotent).
    pub stored: bool,
}

/// `POST /v1/admin/drain` response: the decommission report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainResponse {
    /// Always `"draining"` once the flag is set.
    pub status: String,
    /// Locally held models at drain time (memory + disk tiers).
    pub keys: usize,
    /// Models successfully pushed to a replica-set peer.
    pub pushed: usize,
    /// Models that could not be pushed anywhere (no reachable peer).
    pub failed: usize,
}

/// Structured error body attached to every non-200 response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// HTTP status code, duplicated in the body for log scraping.
    pub status: u16,
    /// Human-readable cause.
    pub error: String,
}

/// Default seed used when a request omits one.
pub const DEFAULT_SEED: u64 = 42;

/// An API-level failure: an HTTP status plus a message safe to return to
/// the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Message placed in the [`ErrorBody`].
    pub message: String,
}

impl ApiError {
    /// Creates an error with the given status and message.
    pub fn new(status: u16, message: impl Into<String>) -> Self {
        ApiError {
            status,
            message: message.into(),
        }
    }

    /// A 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError::new(400, message)
    }

    /// Renders the canonical JSON error body for this error.
    pub fn body(&self) -> String {
        gmap_core::cachekey::canonical_json(&ErrorBody {
            status: self.status,
            error: self.message.clone(),
        })
    }
}

/// Parses an optional scale string (`None` means [`Scale::Default`]).
///
/// # Errors
///
/// Returns a 400 [`ApiError`] for unknown scale names.
pub fn parse_scale(scale: Option<&str>) -> Result<Scale, ApiError> {
    match scale {
        None | Some("default") => Ok(Scale::Default),
        Some("tiny") => Ok(Scale::Tiny),
        Some("small") => Ok(Scale::Small),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown scale {other:?} (expected tiny, small, or default)"
        ))),
    }
}

/// Canonical string for a scale, used to canonicalize workload specs
/// before hashing.
pub fn scale_name(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Default => "default",
    }
}

/// Parses an optional replacement-policy string (`None` means LRU).
///
/// # Errors
///
/// Returns a 400 [`ApiError`] for unknown policy names.
pub fn parse_policy(policy: Option<&str>) -> Result<ReplacementPolicy, ApiError> {
    match policy {
        None | Some("lru") => Ok(ReplacementPolicy::Lru),
        Some("fifo") => Ok(ReplacementPolicy::Fifo),
        Some("plru") => Ok(ReplacementPolicy::PseudoLru),
        Some("random") => Ok(ReplacementPolicy::Random),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown replacement policy {other:?} (expected lru, fifo, plru, or random)"
        ))),
    }
}

/// Parses an optional metric string (`None` means L1 miss percent).
///
/// # Errors
///
/// Returns a 400 [`ApiError`] for unknown metric names.
pub fn parse_metric(metric: Option<&str>) -> Result<gmap_bench::Metric, ApiError> {
    match metric {
        None | Some("l1_miss_pct") => Ok(gmap_bench::Metric::L1MissPct),
        Some("l2_miss_pct") => Ok(gmap_bench::Metric::L2MissPct),
        Some(other) => Err(ApiError::bad_request(format!(
            "unknown metric {other:?} (expected l1_miss_pct or l2_miss_pct)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_with_optional_fields() {
        let full: EvaluateRequest = serde_json::from_str(
            r#"{"model_id":"abc","kernel":1,"metric":"l2_miss_pct","seed":7,
                "grid":[{"level":"l2","size_kb":256,"assoc":8,"line":64,"policy":"fifo"}]}"#,
        )
        .expect("full request parses");
        assert_eq!(full.kernel, Some(1));
        assert_eq!(full.grid[0].policy.as_deref(), Some("fifo"));

        let minimal: EvaluateRequest =
            serde_json::from_str(r#"{"model_id":"abc","grid":[{"size_kb":16,"assoc":4}]}"#)
                .expect("minimal request parses");
        assert_eq!(minimal.kernel, None);
        assert_eq!(minimal.grid[0].line, None);
        assert_eq!(minimal.grid[0].policy, None);
        assert_eq!(minimal.grid[0].stride_prefetch, None);
        assert_eq!(minimal.grid[0].stream_prefetch, None);

        let prefetched: EvaluateRequest = serde_json::from_str(
            r#"{"model_id":"abc","grid":[
                {"size_kb":16,"assoc":4,
                 "stride_prefetch":{"table":64,"degree":2}},
                {"level":"l2","size_kb":512,"assoc":8,
                 "stream_prefetch":{"window":16,"degree":4}}]}"#,
        )
        .expect("prefetcher points parse");
        let stride = prefetched.grid[0]
            .stride_prefetch
            .as_ref()
            .expect("stride point");
        assert_eq!((stride.table, stride.degree), (64, 2));
        assert_eq!(stride.distance, None, "distance defaults downstream");
        let stream = prefetched.grid[1]
            .stream_prefetch
            .as_ref()
            .expect("stream point");
        assert_eq!((stream.window, stream.degree), (16, 4));
        assert_eq!(stream.streams, None, "stream count defaults downstream");
    }

    #[test]
    fn parsers_accept_known_names_and_reject_unknown() {
        assert_eq!(parse_scale(None).expect("default"), Scale::Default);
        assert_eq!(parse_scale(Some("tiny")).expect("tiny"), Scale::Tiny);
        assert_eq!(parse_scale(Some("bogus")).expect_err("bad").status, 400);
        assert_eq!(
            parse_policy(Some("fifo")).expect("fifo"),
            ReplacementPolicy::Fifo
        );
        assert_eq!(parse_policy(Some("mru")).expect_err("bad").status, 400);
        assert_eq!(
            parse_metric(Some("l2_miss_pct")).expect("l2"),
            gmap_bench::Metric::L2MissPct
        );
        assert_eq!(parse_metric(Some("ipc")).expect_err("bad").status, 400);
    }

    #[test]
    fn ingest_query_parses_and_validates() {
        let q = parse_ingest_query("/v1/ingest?grid=2&block=64&name=wl").expect("full query");
        assert_eq!(
            q,
            IngestQuery {
                name: "wl".into(),
                grid: 2,
                block: 64
            }
        );
        let q = parse_ingest_query("/v1/ingest?grid=1&block=32").expect("name defaults");
        assert_eq!(q.name, "ingest");
        for bad in [
            "/v1/ingest",                         // no query at all
            "/v1/ingest?grid=2",                  // missing block
            "/v1/ingest?grid=0&block=32",         // zero grid
            "/v1/ingest?grid=two&block=32",       // unparseable
            "/v1/ingest?grid=1&block=32&foo=bar", // unknown parameter
            "/v1/ingest?grid",                    // no '='
        ] {
            assert_eq!(
                parse_ingest_query(bad).expect_err("rejected").status,
                400,
                "query {bad:?} must be a 400"
            );
        }
    }

    #[test]
    fn error_body_is_canonical_json() {
        let e = ApiError::bad_request("nope");
        assert_eq!(e.body(), r#"{"status":400,"error":"nope"}"#);
    }
}
