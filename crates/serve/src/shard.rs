//! Consistent-hash ring over the FNV-128 content-key space.
//!
//! The model cache is content-addressed: every pipeline request either
//! carries a model id outright (`/v1/clone`, `/v1/evaluate`) or fully
//! determines one before any work happens (`/v1/profile` hashes the
//! canonical workload spec). That 128-bit FNV key is therefore the
//! natural shard key — no second hash family, no coordination, and the
//! router can compute the owner of a request from nothing but its body.
//!
//! The ring places [`DEFAULT_VNODES`] virtual nodes per replica at
//! pseudo-random points on a `u64` circle (each vnode point is the high
//! half of `content_key("{peer}#{index}")` — the same FNV-128 family the
//! keys themselves use — spread through a bijective `mix64` finalizer,
//! because FNV's high bits disperse poorly on short labels). A key is
//! owned by the first vnode at or
//! clockwise after its own point. Virtual nodes smooth the load (the
//! balance proptest bounds the max/min ratio) and make membership
//! changes minimal: adding or removing one replica only moves the keys
//! that replica owns — everything else keeps its owner bit-for-bit
//! (the remapping proptest bounds the moved fraction by `2/N + ε`).
//!
//! Determinism: the ring is a sorted `Vec` scanned in point order —
//! construction and lookup never iterate a hash map, so the ring is
//! covered by the workspace determinism lint without an allowlist
//! entry, and the same peer set always yields the same assignment
//! regardless of the order the peers were listed in.

use crate::api::{CloneRequest, EvaluateRequest, ProfileRequest};
use crate::handlers;
use gmap_core::cachekey;
use gmap_trace::rng::mix64;

/// Virtual nodes per replica. 128 keeps the max/min load ratio low
/// (see the balance proptest) at a negligible memory cost.
pub const DEFAULT_VNODES: usize = 128;

/// A consistent-hash ring mapping content keys to replica addresses.
#[derive(Debug, Clone)]
pub struct Ring {
    /// `(point, peer index)` sorted by point (then index, for the
    /// astronomically unlikely collision) — a fully ordered scan.
    points: Vec<(u64, usize)>,
    peers: Vec<String>,
}

impl Ring {
    /// Builds a ring with [`DEFAULT_VNODES`] virtual nodes per peer.
    pub fn new(peers: &[String]) -> Ring {
        Ring::with_vnodes(peers, DEFAULT_VNODES)
    }

    /// Builds a ring with an explicit virtual-node count (tests sweep
    /// this; production uses [`Ring::new`]).
    pub fn with_vnodes(peers: &[String], vnodes: usize) -> Ring {
        let mut points = Vec::with_capacity(peers.len() * vnodes);
        for (index, peer) in peers.iter().enumerate() {
            for v in 0..vnodes {
                points.push((ring_point(&format!("{peer}#{v}")), index));
            }
        }
        points.sort_unstable();
        Ring {
            points,
            peers: peers.to_vec(),
        }
    }

    /// The replica addresses this ring was built over, in listing order.
    pub fn peers(&self) -> &[String] {
        &self.peers
    }

    /// Whether the ring has no replicas at all.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }

    /// The replica owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: &str) -> Option<&str> {
        self.successors(key).into_iter().next()
    }

    /// Every distinct replica in ring order starting at `key`'s owner:
    /// the failover order. Any replica serves any request correctly
    /// (the cache is an accelerator over a content-addressed pipeline),
    /// so walking this list on transport failure preserves
    /// byte-identical results — it only costs cache locality.
    pub fn successors(&self, key: &str) -> Vec<&str> {
        let mut order = Vec::with_capacity(self.peers.len());
        if self.points.is_empty() {
            return order;
        }
        let mut seen = vec![false; self.peers.len()];
        let point = key_point(key);
        let start = self.points.partition_point(|&(p, _)| p < point);
        for offset in 0..self.points.len() {
            let (_, peer) = self.points[(start + offset) % self.points.len()];
            if !seen[peer] {
                seen[peer] = true;
                order.push(self.peers[peer].as_str());
                if order.len() == self.peers.len() {
                    break;
                }
            }
        }
        order
    }

    /// The replica set of `key` under replication factor `rf`: the
    /// owner plus its first `rf − 1` distinct ring successors. These
    /// are the peers that hold (or should hold) a replica of the
    /// model. With fewer than `rf` peers, every peer is in the set.
    ///
    /// Because the set is a prefix of the successor walk, replica sets
    /// inherit the ring's minimal-remapping property: removing a peer
    /// only changes the sets that contained it (the membership
    /// proptest below pins this down).
    pub fn replica_set(&self, key: &str, rf: usize) -> Vec<&str> {
        let mut order = self.successors(key);
        order.truncate(rf.max(1));
        order
    }
}

/// The ring point of a shard key. A well-formed content key is 32 lower
/// hex characters; its high half, finalized through [`mix64`], is the
/// point. Any other string (fallback keys for unroutable bodies) is
/// first digested through the same FNV-128.
///
/// The finalizer matters: FNV-1a folds each input byte into the low
/// end of the state and the prime multiplication moves entropy upward
/// only slowly, so for short inputs (vnode labels, ingest paths) the
/// digest's *high* 64 bits cluster badly. `mix64` is a bijection, so
/// no two distinct halves collide because of it — it only spreads
/// them uniformly around the circle (the balance proptest fails
/// without it).
fn key_point(key: &str) -> u64 {
    if key.len() == 32 && key.bytes().all(|b| b.is_ascii_hexdigit()) {
        mix64(u64::from_str_radix(&key[..16], 16).expect("checked hex"))
    } else {
        ring_point(key)
    }
}

/// The ring point of a vnode label (or non-hex fallback key): the high
/// half of its FNV-128 content key, finalized through [`mix64`] (see
/// [`key_point`] for why the finalizer is load-bearing).
fn ring_point(label: &str) -> u64 {
    let digest = cachekey::content_key(label);
    mix64(u64::from_str_radix(&digest[..16], 16).expect("content key is hex"))
}

/// The shard key of a request — the model id it will read or create —
/// when that id is derivable without executing anything:
///
/// * `/v1/profile`: resolved exactly as the replica would (named
///   workload + scale, or the inline spec's own content key);
/// * `/v1/clone`, `/v1/evaluate`: the `model_id` field verbatim;
/// * `/v1/ingest`: the resulting model id is the hash of a model that
///   does not exist yet, so the stream routes by the identity of its
///   query string (same trace name + launch geometry ⇒ same replica);
/// * anything else (including unparseable bodies): `None` — the caller
///   falls back to hashing the raw body, which keeps the choice
///   deterministic and lets the owning replica produce the exact 4xx
///   the request deserves.
pub fn request_key(path: &str, body: &str) -> Option<String> {
    let route = path.split('?').next().unwrap_or(path);
    match route {
        "/v1/profile" => {
            let req: ProfileRequest = serde_json::from_str(body).ok()?;
            handlers::resolve_kernel(
                req.workload.as_deref(),
                req.scale.as_deref(),
                req.spec.as_ref(),
            )
            .ok()
            .map(|(_, model_id)| model_id)
        }
        "/v1/clone" => serde_json::from_str::<CloneRequest>(body)
            .ok()
            .map(|r| r.model_id),
        "/v1/evaluate" => serde_json::from_str::<EvaluateRequest>(body)
            .ok()
            .map(|r| r.model_id),
        "/v1/ingest" => Some(cachekey::content_key(path)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmap_trace::rng::mix64;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    fn peer_list(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:80{i:02}")).collect()
    }

    /// A synthetic but well-formed 32-hex content key.
    fn synth_key(seed: u64, i: u64) -> String {
        format!(
            "{:016x}{:016x}",
            mix64(seed ^ i),
            mix64(seed ^ i ^ 0xdead_beef)
        )
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = Ring::new(&[]);
        assert!(ring.is_empty());
        assert_eq!(ring.owner("00112233445566778899aabbccddeeff"), None);
        assert!(ring.successors("anything").is_empty());
    }

    #[test]
    fn single_peer_owns_everything() {
        let ring = Ring::new(&peer_list(1));
        for i in 0..64 {
            assert_eq!(ring.owner(&synth_key(1, i)), Some("10.0.0.0:8000"));
        }
    }

    #[test]
    fn successors_cover_every_peer_exactly_once() {
        let peers = peer_list(5);
        let ring = Ring::new(&peers);
        for i in 0..32 {
            let order = ring.successors(&synth_key(2, i));
            assert_eq!(order.len(), peers.len());
            let mut sorted: Vec<_> = order.clone();
            sorted.sort_unstable();
            let mut want: Vec<_> = peers.iter().map(String::as_str).collect();
            want.sort_unstable();
            assert_eq!(sorted, want, "failover order visits each peer once");
            assert_eq!(order[0], ring.owner(&synth_key(2, i)).expect("non-empty"));
        }
    }

    #[test]
    fn assignment_is_independent_of_peer_listing_order() {
        let peers = peer_list(4);
        let mut reversed = peers.clone();
        reversed.reverse();
        let a = Ring::new(&peers);
        let b = Ring::new(&reversed);
        for i in 0..256 {
            let key = synth_key(3, i);
            assert_eq!(
                a.owner(&key),
                b.owner(&key),
                "listing order must not matter"
            );
        }
    }

    #[test]
    fn non_hex_keys_are_hashed_not_rejected() {
        let ring = Ring::new(&peer_list(3));
        // Same fallback key, same owner; different keys spread.
        assert_eq!(
            ring.owner("not a content key"),
            ring.owner("not a content key")
        );
        assert!(ring.owner("fallback-a").is_some());
    }

    #[test]
    fn request_key_extracts_the_model_id() {
        let profile = r#"{"workload":"kmeans","scale":"tiny"}"#;
        let id = request_key("/v1/profile", profile).expect("routable");
        assert_eq!(id, handlers::model_id_for("kmeans", "tiny"));
        let eval = format!("{{\"model_id\":\"{id}\",\"grid\":[]}}");
        assert_eq!(request_key("/v1/evaluate", &eval), Some(id.clone()));
        let clone = format!("{{\"model_id\":\"{id}\"}}");
        assert_eq!(request_key("/v1/clone", &clone), Some(id));
        // Ingest routes by query identity, deterministically.
        let a = request_key("/v1/ingest?grid=2&block=32&name=t", "");
        assert_eq!(a, request_key("/v1/ingest?grid=2&block=32&name=t", ""));
        assert!(a.is_some());
        assert_ne!(a, request_key("/v1/ingest?grid=4&block=32&name=t", ""));
        // Unroutable inputs are None, not a panic.
        assert_eq!(request_key("/v1/profile", "not json"), None);
        assert_eq!(request_key("/healthz", ""), None);
    }

    fn load_per_peer(ring: &Ring, seed: u64, keys: u64) -> BTreeMap<String, u64> {
        let mut load = BTreeMap::new();
        for i in 0..keys {
            let owner = ring.owner(&synth_key(seed, i)).expect("non-empty ring");
            *load.entry(owner.to_string()).or_insert(0) += 1;
        }
        load
    }

    proptest! {
        /// Key-distribution balance: with 128 vnodes per replica the
        /// busiest replica carries at most 2× the quietest.
        #[test]
        fn ring_load_is_balanced(n in 2usize..7, seed in any::<u64>()) {
            let ring = Ring::with_vnodes(&peer_list(n), DEFAULT_VNODES);
            let keys = 4096u64;
            let load = load_per_peer(&ring, seed, keys);
            prop_assert_eq!(load.len(), n, "every replica owns some keys");
            let max = *load.values().max().expect("non-empty");
            let min = *load.values().min().expect("non-empty");
            prop_assert!(
                max as f64 / min as f64 <= 2.0,
                "max/min load ratio {}/{} exceeds 2.0 across {} vnodes",
                max, min, DEFAULT_VNODES
            );
        }

        /// Minimal remapping on membership change: removing one of N
        /// replicas only moves the keys it owned (≤ 2/N + ε of all
        /// keys), and every surviving key keeps its owner bit-for-bit.
        /// The join direction is the same statement read backwards.
        #[test]
        fn membership_change_moves_few_keys(n in 3usize..8, seed in any::<u64>()) {
            let peers = peer_list(n);
            let full = Ring::new(&peers);
            let reduced = Ring::new(&peers[..n - 1]);
            let removed = peers[n - 1].as_str();
            let keys = 2048u64;
            let mut moved = 0u64;
            for i in 0..keys {
                let key = synth_key(seed, i);
                let before = full.owner(&key).expect("non-empty");
                let after = reduced.owner(&key).expect("non-empty");
                if before == removed {
                    moved += 1;
                    // Orphaned keys land on their failover successor.
                    let successor = full
                        .successors(&key)
                        .into_iter()
                        .find(|p| *p != removed)
                        .expect("another replica exists");
                    prop_assert_eq!(after, successor, "orphans move to the successor");
                } else {
                    prop_assert_eq!(before, after, "survivors never move");
                }
            }
            let bound = 2.0 / n as f64 + 0.05;
            prop_assert!(
                (moved as f64 / keys as f64) <= bound,
                "moved fraction {}/{} exceeds 2/N + ε = {}",
                moved, keys, bound
            );
        }

        /// RF=2 replica sets are genuinely redundant: for every key on
        /// a 2–7-replica fleet, the owner and its first successor are
        /// distinct peers, the set is exactly the first two entries of
        /// the failover order, and it is capped by the fleet size.
        #[test]
        fn owner_and_first_successor_are_distinct(n in 2usize..7, seed in any::<u64>()) {
            let ring = Ring::new(&peer_list(n));
            for i in 0..512u64 {
                let key = synth_key(seed, i);
                let set = ring.replica_set(&key, 2);
                prop_assert_eq!(set.len(), 2.min(n));
                prop_assert!(set[0] != set[1], "owner replicates to a different peer");
                prop_assert_eq!(set[0], ring.owner(&key).expect("non-empty"));
                let order = ring.successors(&key);
                prop_assert_eq!(&order[..set.len()], &set[..], "set is a walk prefix");
                // An oversized rf degrades to the whole fleet, never panics.
                prop_assert_eq!(ring.replica_set(&key, n + 3).len(), n);
            }
        }

        /// Replica-set membership moves minimally on leave (and, read
        /// backwards, on join): a set that did not contain the removed
        /// peer is unchanged bit-for-bit, and the fraction of keys
        /// whose set changes at all is bounded by the removed peer's
        /// expected share of set slots (≈ 2·(2/N)).
        #[test]
        fn replica_sets_move_minimally_on_membership_change(
            n in 3usize..8, seed in any::<u64>()
        ) {
            let peers = peer_list(n);
            let full = Ring::new(&peers);
            let reduced = Ring::new(&peers[..n - 1]);
            let removed = peers[n - 1].as_str();
            let keys = 1024u64;
            let mut changed = 0u64;
            for i in 0..keys {
                let key = synth_key(seed, i);
                let before = full.replica_set(&key, 2);
                let after = reduced.replica_set(&key, 2);
                if before.contains(&removed) {
                    changed += 1;
                    // The survivor of the old set is still in the new
                    // one: the replica copy stays useful after the
                    // membership change.
                    let survivor = before
                        .iter()
                        .find(|p| **p != removed)
                        .expect("rf=2 set has a survivor");
                    prop_assert!(
                        after.contains(survivor),
                        "survivor {} dropped from {:?}",
                        survivor, after
                    );
                } else {
                    prop_assert_eq!(
                        &before, &after,
                        "sets without the removed peer never change"
                    );
                }
            }
            // The removed peer appears in ~2/N of owner slots and
            // ~2/N of successor slots; double it and pad for variance.
            let bound = 2.0 * (2.0 / n as f64) + 0.08;
            prop_assert!(
                (changed as f64 / keys as f64) <= bound,
                "changed fraction {}/{} exceeds 2·(2/N) + ε = {}",
                changed, keys, bound
            );
        }
    }
}
