//! Chaos acceptance test: concurrent clients drive a live server while
//! the deterministic fault injector ([`gmap_serve::faults`]) breaks the
//! disk cache, panics handlers, slows workers, truncates request bodies,
//! and resets connections mid-response.
//!
//! Invariants asserted for every fault spec:
//! * no worker thread dies (shutdown joins the pool; a clean pass after
//!   disarming the injector proves the workers still function),
//! * no corrupted cache entry is ever served (every 200 body is
//!   byte-identical to a direct library call),
//! * every accepted request gets exactly one response (all client
//!   threads complete with a definite outcome, never a hang),
//! * post-chaos results are byte-identical to a fault-free run, even
//!   after reopening a cache directory that holds torn entries.
//!
//! The fault seed is pinned via `GMAP_CHAOS_SEED` (CI does this) so a
//! failing run can be replayed; without it a fixed default applies.

use gmap_core::cachekey::canonical_json;
use gmap_serve::api::{EvaluateRequest, GridPoint, ProfileRequest, ProfileResponse};
use gmap_serve::cache::ModelStore;
use gmap_serve::client::{self, RetryPolicy};
use gmap_serve::faults::{FaultKind, FaultSpec};
use gmap_serve::handlers;
use gmap_serve::metrics::{scrape, Metrics};
use gmap_serve::ServeConfig;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const CHAOS_WORKLOADS: [&str; 3] = ["kmeans", "bfs", "hotspot"];

/// Statuses a client may legitimately observe while faults are armed.
const TRANSIENT: [u16; 5] = [408, 429, 500, 503, 504];

fn chaos_seed() -> u64 {
    std::env::var("GMAP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_807)
}

fn profile_req(workload: &str) -> String {
    canonical_json(&ProfileRequest {
        workload: Some(workload.into()),
        scale: Some("tiny".into()),
        spec: None,
    })
}

fn eval_grid() -> Vec<GridPoint> {
    [16u64, 32]
        .iter()
        .map(|&size_kb| GridPoint {
            level: None,
            size_kb,
            assoc: 4,
            line: None,
            policy: None,
            stride_prefetch: None,
            stream_prefetch: None,
        })
        .collect()
}

fn eval_req(model_id: &str) -> String {
    canonical_json(&EvaluateRequest {
        model_id: model_id.into(),
        kernel: None,
        metric: None,
        seed: None,
        grid: eval_grid(),
    })
}

/// Per-workload fault-free expectations from direct library calls.
struct Expected {
    model_id: String,
    profile_stats: String,
    evaluate_body: String,
}

fn expectations() -> Vec<(String, Expected)> {
    let store = ModelStore::new(None).expect("memory store");
    let metrics = Metrics::new();
    CHAOS_WORKLOADS
        .iter()
        .map(|w| {
            let req = ProfileRequest {
                workload: Some((*w).into()),
                scale: Some("tiny".into()),
                spec: None,
            };
            let p = handlers::profile(&store, &metrics, &req, &AtomicBool::new(false))
                .expect("direct profile");
            let e = handlers::evaluate(
                &store,
                &EvaluateRequest {
                    model_id: p.model_id.clone(),
                    kernel: None,
                    metric: None,
                    seed: None,
                    grid: eval_grid(),
                },
                &AtomicBool::new(false),
            )
            .expect("direct evaluate");
            (
                (*w).to_string(),
                Expected {
                    model_id: p.model_id.clone(),
                    profile_stats: canonical_json(&p.stats),
                    evaluate_body: canonical_json(&e),
                },
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmap-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 10,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: chaos_seed(),
    }
}

/// Checks one served profile body against the oracle. Panics on any
/// divergence — a 200 carrying wrong bytes is the worst possible outcome.
fn verify_profile(body: &str, want: &Expected, ctx: &str) {
    let served: ProfileResponse = serde_json::from_str(body)
        .unwrap_or_else(|e| panic!("{ctx}: 200 body must parse: {e}: {body}"));
    assert_eq!(served.model_id, want.model_id, "{ctx}: model id diverged");
    assert_eq!(
        canonical_json(&served.stats),
        want.profile_stats,
        "{ctx}: served stats diverged from direct call"
    );
}

/// Drives one fault spec end to end and returns the total number of
/// injected faults (so callers can assert the spec actually fired).
fn run_chaos_round(tag: &str, spec: FaultSpec, expected: &[(String, Expected)]) -> u64 {
    let cache_dir = temp_dir(tag);
    let handle = gmap_serve::start(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        deadline: Duration::from_secs(30),
        cache_dir: Some(cache_dir.clone()),
        faults: Some(spec),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Phase 1: concurrent clients under fire. Every request must end in
    // a definite outcome — a verified 200, a transient status, or a
    // transport error — never a hang or a wrong payload.
    let successes = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let addr = addr.clone();
            let successes = Arc::clone(&successes);
            let expected: Vec<(String, Expected)> = expected
                .iter()
                .map(|(w, e)| {
                    (
                        w.clone(),
                        Expected {
                            model_id: e.model_id.clone(),
                            profile_stats: e.profile_stats.clone(),
                            evaluate_body: e.evaluate_body.clone(),
                        },
                    )
                })
                .collect();
            thread::spawn(move || {
                let policy = RetryPolicy {
                    seed: retry_policy().seed ^ t,
                    ..retry_policy()
                };
                for round in 0..3 {
                    for (w, want) in &expected {
                        let ctx = format!("thread {t} round {round} workload {w}");
                        let profiled = client::request_with_retry(
                            &addr,
                            "POST",
                            "/v1/profile",
                            Some(&profile_req(w)),
                            &policy,
                        );
                        let profile_ok = match profiled {
                            Ok(r) if r.status == 200 => {
                                verify_profile(&r.body, want, &ctx);
                                successes.fetch_add(1, Ordering::Relaxed);
                                true
                            }
                            Ok(r) => {
                                assert!(
                                    TRANSIENT.contains(&r.status),
                                    "{ctx}: unexpected status {}: {}",
                                    r.status,
                                    r.body
                                );
                                false
                            }
                            // Injected resets/truncations surface as
                            // transport errors; a definite outcome.
                            Err(_) => false,
                        };
                        if !profile_ok {
                            continue;
                        }
                        match client::request_with_retry(
                            &addr,
                            "POST",
                            "/v1/evaluate",
                            Some(&eval_req(&want.model_id)),
                            &policy,
                        ) {
                            Ok(r) if r.status == 200 => {
                                assert_eq!(
                                    r.body, want.evaluate_body,
                                    "{ctx}: evaluate body diverged from direct call"
                                );
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(r) => assert!(
                                TRANSIENT.contains(&r.status),
                                "{ctx}: unexpected evaluate status {}: {}",
                                r.status,
                                r.body
                            ),
                            Err(_) => {}
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("chaos client thread completes");
    }
    assert!(
        successes.load(Ordering::Relaxed) > 0,
        "{tag}: the service must make progress under faults"
    );

    // Phase 2: disarm and prove the service is fully intact — workers
    // alive, cache serving correct bytes, panics contained and counted.
    let injector = Arc::clone(
        handle
            .state()
            .fault_injector()
            .expect("fault spec configured"),
    );
    injector.set_armed(false);
    for (w, want) in expected {
        let r = client::post_json(&addr, "/v1/profile", &profile_req(w))
            .expect("clean profile reachable");
        assert_eq!(r.status, 200, "{tag}: clean profile: {}", r.body);
        verify_profile(&r.body, want, &format!("{tag} clean pass {w}"));
        let r = client::post_json(&addr, "/v1/evaluate", &eval_req(&want.model_id))
            .expect("clean evaluate reachable");
        assert_eq!(r.status, 200, "{tag}: clean evaluate: {}", r.body);
        assert_eq!(
            r.body, want.evaluate_body,
            "{tag}: post-chaos evaluate must be byte-identical to a fault-free run"
        );
    }
    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(
        scrape(&m.body, "gmap_worker_panics_total"),
        Some(injector.injected(FaultKind::Panic) as f64),
        "{tag}: every injected panic was contained and counted"
    );
    let injected_total = injector.injected_total();
    let injected_short_writes = injector.injected(FaultKind::ShortWrite);
    handle.shutdown();

    // Phase 3: reopen the cache directory with a fresh, fault-free
    // server. Torn disk entries from injected short writes must be
    // quarantined — never served — and results must still match.
    let handle = gmap_serve::start(ServeConfig {
        workers: 2,
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("reopen cache dir");
    let addr = handle.addr().to_string();
    for (w, want) in expected {
        let r = client::post_json(&addr, "/v1/profile", &profile_req(w))
            .expect("reopened profile reachable");
        assert_eq!(r.status, 200, "{tag}: reopened profile: {}", r.body);
        verify_profile(&r.body, want, &format!("{tag} reopened {w}"));
    }
    if injected_short_writes > 0 {
        let m = client::get(&addr, "/metrics").expect("metrics reachable");
        let quarantined =
            scrape(&m.body, "gmap_cache_quarantined_total").expect("quarantine counter exported");
        assert!(
            quarantined >= 1.0,
            "{tag}: torn disk entries must be quarantined on reopen"
        );
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
    injected_total
}

#[test]
fn service_survives_every_fault_kind() {
    let seed = chaos_seed();
    let expected = expectations();
    // One spec per fault kind, rates high enough that each kind provably
    // fires, plus a combined everything-at-once spec.
    let specs: Vec<(&str, String)> = vec![
        ("disk-err", format!("{seed}:disk_err=0.5")),
        ("short-write", format!("{seed}:short_write=0.8")),
        ("panic", format!("{seed}:panic=0.3")),
        ("slow", format!("{seed}:slow=0.5,slow_ms=15")),
        ("trunc-body", format!("{seed}:trunc_body=0.3")),
        ("reset", format!("{seed}:reset=0.3")),
        (
            "everything",
            format!(
                "{seed}:disk_err=0.2,short_write=0.3,panic=0.15,slow=0.2,slow_ms=10,\
                 trunc_body=0.15,reset=0.15"
            ),
        ),
    ];
    for (tag, spec) in specs {
        let parsed = FaultSpec::parse(&spec).expect("valid chaos spec");
        let injected = run_chaos_round(tag, parsed, &expected);
        assert!(
            injected > 0,
            "{tag}: spec {spec:?} never injected a fault — the round was vacuous"
        );
    }
}
