//! Chaos acceptance test: concurrent clients drive a live server while
//! the deterministic fault injector ([`gmap_serve::faults`]) breaks the
//! disk cache, panics handlers, slows workers, truncates request bodies,
//! and resets connections mid-response.
//!
//! Invariants asserted for every fault spec:
//! * no worker thread dies (shutdown joins the pool; a clean pass after
//!   disarming the injector proves the workers still function),
//! * no corrupted cache entry is ever served (every 200 body is
//!   byte-identical to a direct library call),
//! * every accepted request gets exactly one response (all client
//!   threads complete with a definite outcome, never a hang),
//! * post-chaos results are byte-identical to a fault-free run, even
//!   after reopening a cache directory that holds torn entries.
//!
//! The fault seed is pinned via `GMAP_CHAOS_SEED` (CI does this) so a
//! failing run can be replayed; without it a fixed default applies.

use gmap_core::cachekey::{canonical_json, content_key};
use gmap_serve::api::{EvaluateRequest, GridPoint, ProfileRequest, ProfileResponse};
use gmap_serve::cache::ModelStore;
use gmap_serve::client::{self, PeerClient, RetryPolicy};
use gmap_serve::faults::{FaultInjector, FaultKind, FaultSpec};
use gmap_serve::handlers;
use gmap_serve::metrics::{scrape, Metrics};
use gmap_serve::{ServeConfig, ServerHandle};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

const CHAOS_WORKLOADS: [&str; 3] = ["kmeans", "bfs", "hotspot"];

/// Statuses a client may legitimately observe while faults are armed.
const TRANSIENT: [u16; 5] = [408, 429, 500, 503, 504];

fn chaos_seed() -> u64 {
    std::env::var("GMAP_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_260_807)
}

fn profile_req(workload: &str) -> String {
    canonical_json(&ProfileRequest {
        workload: Some(workload.into()),
        scale: Some("tiny".into()),
        spec: None,
    })
}

fn eval_grid() -> Vec<GridPoint> {
    [16u64, 32]
        .iter()
        .map(|&size_kb| GridPoint {
            level: None,
            size_kb,
            assoc: 4,
            line: None,
            policy: None,
            stride_prefetch: None,
            stream_prefetch: None,
        })
        .collect()
}

fn eval_req(model_id: &str) -> String {
    canonical_json(&EvaluateRequest {
        model_id: model_id.into(),
        kernel: None,
        metric: None,
        seed: None,
        grid: eval_grid(),
    })
}

/// Per-workload fault-free expectations from direct library calls.
struct Expected {
    model_id: String,
    profile_stats: String,
    evaluate_body: String,
}

fn expectations() -> Vec<(String, Expected)> {
    let store = ModelStore::new(None).expect("memory store");
    let metrics = Metrics::new();
    CHAOS_WORKLOADS
        .iter()
        .map(|w| {
            let req = ProfileRequest {
                workload: Some((*w).into()),
                scale: Some("tiny".into()),
                spec: None,
            };
            let p = handlers::profile(&store, &metrics, &req, &AtomicBool::new(false))
                .expect("direct profile");
            let e = handlers::evaluate(
                &store,
                &EvaluateRequest {
                    model_id: p.model_id.clone(),
                    kernel: None,
                    metric: None,
                    seed: None,
                    grid: eval_grid(),
                },
                &AtomicBool::new(false),
            )
            .expect("direct evaluate");
            (
                (*w).to_string(),
                Expected {
                    model_id: p.model_id.clone(),
                    profile_stats: canonical_json(&p.stats),
                    evaluate_body: canonical_json(&e),
                },
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmap-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn retry_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 10,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(100),
        seed: chaos_seed(),
    }
}

/// Checks one served profile body against the oracle. Panics on any
/// divergence — a 200 carrying wrong bytes is the worst possible outcome.
fn verify_profile(body: &str, want: &Expected, ctx: &str) {
    let served: ProfileResponse = serde_json::from_str(body)
        .unwrap_or_else(|e| panic!("{ctx}: 200 body must parse: {e}: {body}"));
    assert_eq!(served.model_id, want.model_id, "{ctx}: model id diverged");
    assert_eq!(
        canonical_json(&served.stats),
        want.profile_stats,
        "{ctx}: served stats diverged from direct call"
    );
}

/// Drives one fault spec end to end and returns the total number of
/// injected faults (so callers can assert the spec actually fired).
fn run_chaos_round(tag: &str, spec: FaultSpec, expected: &[(String, Expected)]) -> u64 {
    let cache_dir = temp_dir(tag);
    let handle = gmap_serve::start(ServeConfig {
        workers: 2,
        queue_capacity: 64,
        deadline: Duration::from_secs(30),
        cache_dir: Some(cache_dir.clone()),
        faults: Some(spec),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = handle.addr().to_string();

    // Phase 1: concurrent clients under fire. Every request must end in
    // a definite outcome — a verified 200, a transient status, or a
    // transport error — never a hang or a wrong payload.
    let successes = Arc::new(AtomicUsize::new(0));
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let addr = addr.clone();
            let successes = Arc::clone(&successes);
            let expected: Vec<(String, Expected)> = expected
                .iter()
                .map(|(w, e)| {
                    (
                        w.clone(),
                        Expected {
                            model_id: e.model_id.clone(),
                            profile_stats: e.profile_stats.clone(),
                            evaluate_body: e.evaluate_body.clone(),
                        },
                    )
                })
                .collect();
            thread::spawn(move || {
                let policy = RetryPolicy {
                    seed: retry_policy().seed ^ t,
                    ..retry_policy()
                };
                for round in 0..3 {
                    for (w, want) in &expected {
                        let ctx = format!("thread {t} round {round} workload {w}");
                        let profiled = client::request_with_retry(
                            &addr,
                            "POST",
                            "/v1/profile",
                            Some(&profile_req(w)),
                            &policy,
                        );
                        let profile_ok = match profiled {
                            Ok(r) if r.status == 200 => {
                                verify_profile(&r.body, want, &ctx);
                                successes.fetch_add(1, Ordering::Relaxed);
                                true
                            }
                            Ok(r) => {
                                assert!(
                                    TRANSIENT.contains(&r.status),
                                    "{ctx}: unexpected status {}: {}",
                                    r.status,
                                    r.body
                                );
                                false
                            }
                            // Injected resets/truncations surface as
                            // transport errors; a definite outcome.
                            Err(_) => false,
                        };
                        if !profile_ok {
                            continue;
                        }
                        match client::request_with_retry(
                            &addr,
                            "POST",
                            "/v1/evaluate",
                            Some(&eval_req(&want.model_id)),
                            &policy,
                        ) {
                            Ok(r) if r.status == 200 => {
                                assert_eq!(
                                    r.body, want.evaluate_body,
                                    "{ctx}: evaluate body diverged from direct call"
                                );
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(r) => assert!(
                                TRANSIENT.contains(&r.status),
                                "{ctx}: unexpected evaluate status {}: {}",
                                r.status,
                                r.body
                            ),
                            Err(_) => {}
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("chaos client thread completes");
    }
    assert!(
        successes.load(Ordering::Relaxed) > 0,
        "{tag}: the service must make progress under faults"
    );

    // Phase 2: disarm and prove the service is fully intact — workers
    // alive, cache serving correct bytes, panics contained and counted.
    let injector = Arc::clone(
        handle
            .state()
            .fault_injector()
            .expect("fault spec configured"),
    );
    injector.set_armed(false);
    for (w, want) in expected {
        let r = client::post_json(&addr, "/v1/profile", &profile_req(w))
            .expect("clean profile reachable");
        assert_eq!(r.status, 200, "{tag}: clean profile: {}", r.body);
        verify_profile(&r.body, want, &format!("{tag} clean pass {w}"));
        let r = client::post_json(&addr, "/v1/evaluate", &eval_req(&want.model_id))
            .expect("clean evaluate reachable");
        assert_eq!(r.status, 200, "{tag}: clean evaluate: {}", r.body);
        assert_eq!(
            r.body, want.evaluate_body,
            "{tag}: post-chaos evaluate must be byte-identical to a fault-free run"
        );
    }
    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(
        scrape(&m.body, "gmap_worker_panics_total"),
        Some(injector.injected(FaultKind::Panic) as f64),
        "{tag}: every injected panic was contained and counted"
    );
    let injected_total = injector.injected_total();
    let injected_short_writes = injector.injected(FaultKind::ShortWrite);
    handle.shutdown();

    // Phase 3: reopen the cache directory with a fresh, fault-free
    // server. Torn disk entries from injected short writes must be
    // quarantined — never served — and results must still match.
    let handle = gmap_serve::start(ServeConfig {
        workers: 2,
        cache_dir: Some(cache_dir.clone()),
        ..ServeConfig::default()
    })
    .expect("reopen cache dir");
    let addr = handle.addr().to_string();
    for (w, want) in expected {
        let r = client::post_json(&addr, "/v1/profile", &profile_req(w))
            .expect("reopened profile reachable");
        assert_eq!(r.status, 200, "{tag}: reopened profile: {}", r.body);
        verify_profile(&r.body, want, &format!("{tag} reopened {w}"));
    }
    if injected_short_writes > 0 {
        let m = client::get(&addr, "/metrics").expect("metrics reachable");
        let quarantined =
            scrape(&m.body, "gmap_cache_quarantined_total").expect("quarantine counter exported");
        assert!(
            quarantined >= 1.0,
            "{tag}: torn disk entries must be quarantined on reopen"
        );
    }
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&cache_dir);
    injected_total
}

#[test]
fn service_survives_every_fault_kind() {
    let seed = chaos_seed();
    let expected = expectations();
    // One spec per fault kind, rates high enough that each kind provably
    // fires, plus a combined everything-at-once spec.
    let specs: Vec<(&str, String)> = vec![
        ("disk-err", format!("{seed}:disk_err=0.5")),
        ("short-write", format!("{seed}:short_write=0.8")),
        ("panic", format!("{seed}:panic=0.3")),
        ("slow", format!("{seed}:slow=0.5,slow_ms=15")),
        ("trunc-body", format!("{seed}:trunc_body=0.3")),
        ("reset", format!("{seed}:reset=0.3")),
        (
            "everything",
            format!(
                "{seed}:disk_err=0.2,short_write=0.3,panic=0.15,slow=0.2,slow_ms=10,\
                 trunc_body=0.15,reset=0.15"
            ),
        ),
    ];
    for (tag, spec) in specs {
        let parsed = FaultSpec::parse(&spec).expect("valid chaos spec");
        let injected = run_chaos_round(tag, parsed, &expected);
        assert!(
            injected > 0,
            "{tag}: spec {spec:?} never injected a fault — the round was vacuous"
        );
    }
}

// ------------------------------------------------------------------
// Sharded chaos: a router fronting a replica fleet. CI runs these with
// `--test chaos sharded`, so every test name below contains "sharded".

/// A router fronting `n` replicas. Each replica carries a *disarmed*
/// `reset=1` fault injector: arming it "kills" the replica (every
/// response is cut mid-write, so peers see pure transport failures) and
/// disarming it "restarts" the replica — no port rebinding, so the
/// kill/restart sequence is deterministic even under concurrent load.
struct Fleet {
    replicas: Vec<ServerHandle>,
    injectors: Vec<Arc<FaultInjector>>,
    peers: Vec<String>,
    router: ServerHandle,
}

fn start_fleet(n: usize) -> Fleet {
    let seed = chaos_seed();
    let mut replicas = Vec::new();
    let mut injectors = Vec::new();
    let mut peers = Vec::new();
    for i in 0..n {
        let spec =
            FaultSpec::parse(&format!("{}:reset=1", seed ^ i as u64)).expect("valid kill spec");
        let handle = gmap_serve::start(ServeConfig {
            workers: 2,
            queue_capacity: 64,
            deadline: Duration::from_secs(30),
            faults: Some(spec),
            ..ServeConfig::default()
        })
        .expect("bind replica");
        let injector = Arc::clone(
            handle
                .state()
                .fault_injector()
                .expect("fault spec configured"),
        );
        injector.set_armed(false); // healthy until the test kills it
        peers.push(handle.addr().to_string());
        injectors.push(injector);
        replicas.push(handle);
    }
    let router = gmap_serve::start(ServeConfig {
        workers: 1,
        deadline: Duration::from_secs(30),
        route: Some(peers.clone()),
        ..ServeConfig::default()
    })
    .expect("bind router");
    Fleet {
        replicas,
        injectors,
        peers,
        router,
    }
}

impl Fleet {
    fn router_addr(&self) -> String {
        self.router.addr().to_string()
    }

    fn kill(&self, i: usize) {
        self.injectors[i].set_armed(true);
    }

    fn restart(&self, i: usize) {
        self.injectors[i].set_armed(false);
    }

    fn shutdown(self) {
        self.router.shutdown();
        for replica in self.replicas {
            replica.shutdown();
        }
    }
}

/// Scrapes one counter off the router's `/metrics` (0 when absent).
fn route_metric(addr: &str, name: &str) -> f64 {
    let m = client::get(addr, "/metrics").expect("router metrics reachable");
    scrape(&m.body, name).unwrap_or(0.0)
}

fn note_latency(max_ms: &AtomicU64, begin: Instant) {
    let ms = begin.elapsed().as_millis() as u64;
    max_ms.fetch_max(ms, Ordering::Relaxed);
}

/// The headline sharding invariant: a storm of routed traffic survives a
/// replica being killed and restarted mid-sweep with every 200 response
/// byte-identical to a direct library call, every non-200 an honest
/// transient status carrying `Retry-After`, per-request latency bounded,
/// and the router's failover counter proving the kill was observed.
#[test]
fn sharded_fleet_survives_replica_kill_and_restart_mid_sweep() {
    let expected = expectations();
    let fleet = start_fleet(3);
    let addr = fleet.router_addr();

    // Pre-warm every replica with every model, replica-direct. Sharding
    // here is cache *locality*, not data placement: any replica computes
    // any request identically (content-addressed pipeline), which is
    // exactly what makes failover byte-identical instead of wrong.
    for peer in &fleet.peers {
        for (w, want) in &expected {
            let r = client::post_json(peer, "/v1/profile", &profile_req(w)).expect("prewarm");
            assert_eq!(r.status, 200, "prewarm {w} on {peer}: {}", r.body);
            verify_profile(&r.body, want, &format!("prewarm {w} on {peer}"));
        }
    }

    // Victim: the replica owning the kmeans model, so the kill is
    // guaranteed to sit on the routing path of live traffic.
    let kmeans_id = &expected
        .iter()
        .find(|(w, _)| w == "kmeans")
        .expect("kmeans expectation")
        .1
        .model_id;
    let owner = fleet
        .router
        .state()
        .router()
        .expect("router mode")
        .ring()
        .owner(kmeans_id)
        .expect("nonempty ring")
        .to_string();
    let victim = fleet
        .peers
        .iter()
        .position(|p| *p == owner)
        .expect("owner is a fleet peer");

    let stop = Arc::new(AtomicBool::new(false));
    let successes = Arc::new(AtomicUsize::new(0));
    let max_ms = Arc::new(AtomicU64::new(0));
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            let addr = addr.clone();
            let stop = Arc::clone(&stop);
            let successes = Arc::clone(&successes);
            let max_ms = Arc::clone(&max_ms);
            let expected: Vec<(String, Expected)> = expected
                .iter()
                .map(|(w, e)| {
                    (
                        w.clone(),
                        Expected {
                            model_id: e.model_id.clone(),
                            profile_stats: e.profile_stats.clone(),
                            evaluate_body: e.evaluate_body.clone(),
                        },
                    )
                })
                .collect();
            thread::spawn(move || {
                let policy = RetryPolicy {
                    seed: retry_policy().seed ^ (100 + t),
                    ..retry_policy()
                };
                let check = |r: &client::Response, ctx: &str| {
                    assert!(
                        TRANSIENT.contains(&r.status),
                        "{ctx}: unexpected status {}: {}",
                        r.status,
                        r.body
                    );
                    if matches!(r.status, 429 | 500 | 503 | 504) {
                        assert!(
                            r.retry_after.is_some(),
                            "{ctx}: honest {} must carry Retry-After",
                            r.status
                        );
                    }
                };
                let mut round = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for (w, want) in &expected {
                        let ctx = format!("sharded thread {t} round {round} workload {w}");
                        let begin = Instant::now();
                        let profiled = client::request_with_retry(
                            &addr,
                            "POST",
                            "/v1/profile",
                            Some(&profile_req(w)),
                            &policy,
                        );
                        note_latency(&max_ms, begin);
                        match profiled {
                            Ok(r) if r.status == 200 => {
                                verify_profile(&r.body, want, &ctx);
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(r) => check(&r, &ctx),
                            Err(_) => {}
                        }
                        let begin = Instant::now();
                        let evaluated = client::request_with_retry(
                            &addr,
                            "POST",
                            "/v1/evaluate",
                            Some(&eval_req(&want.model_id)),
                            &policy,
                        );
                        note_latency(&max_ms, begin);
                        match evaluated {
                            Ok(r) if r.status == 200 => {
                                assert_eq!(
                                    r.body, want.evaluate_body,
                                    "{ctx}: routed evaluate diverged from direct call"
                                );
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Ok(r) => check(&r, &format!("{ctx} evaluate")),
                            Err(_) => {}
                        }
                    }
                    round += 1;
                }
            })
        })
        .collect();

    // Conductor: let traffic flow, kill the owner mid-sweep, wait until
    // the router provably failed over, then restart it.
    thread::sleep(Duration::from_millis(150));
    fleet.kill(victim);
    let kill_started = Instant::now();
    while route_metric(&addr, "gmap_route_failovers_total") < 1.0 {
        assert!(
            kill_started.elapsed() < Duration::from_secs(20),
            "router never recorded a failover after the kill"
        );
        thread::sleep(Duration::from_millis(25));
    }
    fleet.restart(victim);
    thread::sleep(Duration::from_millis(200));
    stop.store(true, Ordering::Relaxed);
    for t in threads {
        t.join().expect("storm thread completes");
    }
    assert!(
        successes.load(Ordering::Relaxed) > 0,
        "the fleet must make progress through the kill window"
    );
    assert!(
        max_ms.load(Ordering::Relaxed) < 15_000,
        "tail latency must stay bounded (worst request {}ms)",
        max_ms.load(Ordering::Relaxed)
    );

    // Clean pass with the victim restored: routed results byte-identical.
    for (w, want) in &expected {
        let r = client::post_json(&addr, "/v1/profile", &profile_req(w))
            .expect("routed profile reachable");
        assert_eq!(r.status, 200, "clean routed profile {w}: {}", r.body);
        verify_profile(&r.body, want, &format!("clean routed {w}"));
        let r = client::post_json(&addr, "/v1/evaluate", &eval_req(&want.model_id))
            .expect("routed evaluate reachable");
        assert_eq!(r.status, 200, "clean routed evaluate {w}: {}", r.body);
        assert_eq!(
            r.body, want.evaluate_body,
            "clean routed evaluate {w} must be byte-identical to a direct call"
        );
    }

    // The per-shard counters moved: at least one forward somewhere, at
    // least one failover total, and every peer's labeled series exists.
    let m = client::get(&addr, "/metrics").expect("router metrics reachable");
    let mut forwards_total = 0.0;
    for peer in &fleet.peers {
        let series = format!("gmap_route_forwards_total{{peer=\"{peer}\"}}");
        let n = scrape(&m.body, &series).unwrap_or_else(|| panic!("router must export {series}"));
        forwards_total += n;
    }
    assert!(forwards_total >= 1.0, "router must have forwarded requests");
    let failovers =
        scrape(&m.body, "gmap_route_failovers_total").expect("failover counter exported");
    assert!(failovers >= 1.0, "the kill must have forced a failover");
    fleet.shutdown();
}

/// The peer-aware client walks past a replica that refuses connections:
/// requests keyed to the dead peer land on its ring successor with
/// byte-identical results.
#[test]
fn sharded_peer_client_fails_over_past_dead_replica() {
    let expected = expectations();
    let live: Vec<ServerHandle> = (0..2)
        .map(|_| {
            gmap_serve::start(ServeConfig {
                workers: 2,
                ..ServeConfig::default()
            })
            .expect("bind replica")
        })
        .collect();
    // An ephemeral port that was bound and immediately released: connects
    // to it are refused — a permanently dead fleet member.
    let dead_addr = {
        let throwaway = std::net::TcpListener::bind("127.0.0.1:0").expect("bind throwaway");
        throwaway.local_addr().expect("throwaway addr").to_string()
    };
    let mut peers: Vec<String> = live.iter().map(|h| h.addr().to_string()).collect();
    peers.push(dead_addr.clone());
    let peer_client = PeerClient::new(&peers, retry_policy());

    // A shard key provably owned by the dead peer, found by scanning
    // synthetic keys — the walk from it must end on a live successor.
    let key = (0..4096u32)
        .map(|i| content_key(&format!("sharded-dead-owner-{i}")))
        .find(|k| peer_client.ring().owner(k) == Some(dead_addr.as_str()))
        .expect("some synthetic key lands on the dead peer");

    for (w, want) in &expected {
        let ctx = format!("peer-client dead-owner workload {w}");
        let r = peer_client
            .request_keyed(&key, "POST", "/v1/profile", Some(&profile_req(w)))
            .expect("profile fails over to a live replica");
        assert_eq!(r.status, 200, "{ctx}: {}", r.body);
        verify_profile(&r.body, want, &ctx);
        // Same key ⇒ same successor order ⇒ the replica that profiled
        // also evaluates, so the model is present.
        let r = peer_client
            .request_keyed(
                &key,
                "POST",
                "/v1/evaluate",
                Some(&eval_req(&want.model_id)),
            )
            .expect("evaluate fails over to a live replica");
        assert_eq!(r.status, 200, "{ctx}: evaluate: {}", r.body);
        assert_eq!(
            r.body, want.evaluate_body,
            "{ctx}: failover evaluate must be byte-identical to a direct call"
        );
    }

    // Derived-key routing works end to end too, whichever peer owns it.
    let r = peer_client
        .request("POST", "/v1/profile", Some(&profile_req("kmeans")))
        .expect("derived-key profile reachable");
    assert_eq!(r.status, 200, "derived-key profile: {}", r.body);
    for handle in live {
        handle.shutdown();
    }
}

// ------------------------------------------------------------------
// Replicated-fleet chaos: `--fleet` replicas with successor
// replication, hinted handoff, and drain. CI runs these as a gated
// step with `--test chaos replicated`, so every test name below
// contains "replicated".

/// Pre-allocates `n` distinct loopback addresses by binding ephemeral
/// ports and immediately releasing them. Fleet members must know each
/// other's addresses *before* any server starts, so the usual
/// bind-then-read-the-port trick cannot work here.
fn reserve_addrs(n: usize) -> Vec<String> {
    (0..n)
        .map(|_| {
            let l = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
            l.local_addr().expect("reserved addr").to_string()
        })
        .collect()
}

/// A replica fleet with successor replication (RF=2) and fast health
/// probes. Same disarmed `reset=1` kill switch as [`Fleet`].
struct ReplFleet {
    replicas: Vec<ServerHandle>,
    injectors: Vec<Arc<FaultInjector>>,
    peers: Vec<String>,
}

/// Starts `n` fleet replicas on pre-reserved addresses. Another process
/// can steal a released port between reservation and bind, so the whole
/// fleet is retried on bind failure.
fn start_repl_fleet(n: usize) -> ReplFleet {
    let seed = chaos_seed();
    'attempt: for _ in 0..5 {
        let peers = reserve_addrs(n);
        let mut replicas = Vec::new();
        let mut injectors = Vec::new();
        for (i, addr) in peers.iter().enumerate() {
            let spec = FaultSpec::parse(&format!("{}:reset=1", seed ^ (40 + i as u64)))
                .expect("valid kill spec");
            let started = gmap_serve::start(ServeConfig {
                listen: addr.clone(),
                workers: 2,
                queue_capacity: 64,
                deadline: Duration::from_secs(30),
                faults: Some(spec),
                fleet: Some(peers.clone()),
                advertise: Some(addr.clone()),
                replication_factor: 2,
                probe_interval: Duration::from_millis(100),
                ..ServeConfig::default()
            });
            match started {
                Ok(handle) => {
                    let injector = Arc::clone(
                        handle
                            .state()
                            .fault_injector()
                            .expect("fault spec configured"),
                    );
                    injector.set_armed(false);
                    injectors.push(injector);
                    replicas.push(handle);
                }
                Err(_) => {
                    for handle in replicas {
                        handle.shutdown();
                    }
                    continue 'attempt;
                }
            }
        }
        return ReplFleet {
            replicas,
            injectors,
            peers,
        };
    }
    panic!("could not bind a reserved replica fleet in 5 attempts");
}

impl ReplFleet {
    fn kill(&self, i: usize) {
        self.injectors[i].set_armed(true);
    }

    fn restart(&self, i: usize) {
        self.injectors[i].set_armed(false);
    }

    fn shutdown(self) {
        for replica in self.replicas {
            replica.shutdown();
        }
    }
}

/// Polls `addr`'s metric `name` until `pred` holds (panics after 20s).
fn wait_for_metric(addr: &str, name: &str, pred: impl Fn(f64) -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if pred(route_metric(addr, name)) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what} ({name} on {addr} is {})",
            route_metric(addr, name)
        );
        thread::sleep(Duration::from_millis(25));
    }
}

/// The replication acceptance headline: after the owner of a model is
/// killed, its ring successor serves the key from its *replica copy* —
/// byte-identical, with zero recompute (the successor's cache-miss
/// counter does not move).
#[test]
fn replicated_fleet_serves_victim_keys_from_replica_without_recompute() {
    let expected = expectations();
    let fleet = start_repl_fleet(3);
    let router = gmap_serve::start(ServeConfig {
        workers: 1,
        deadline: Duration::from_secs(30),
        route: Some(fleet.peers.clone()),
        probe_interval: Duration::from_millis(100),
        ..ServeConfig::default()
    })
    .expect("bind router");
    let addr = router.addr().to_string();

    // One routed profile per workload: each lands on its owner, which
    // asynchronously write-through-replicates to its ring successor.
    for (w, want) in &expected {
        let r = client::post_json(&addr, "/v1/profile", &profile_req(w)).expect("routed profile");
        assert_eq!(r.status, 200, "routed profile {w}: {}", r.body);
        verify_profile(&r.body, want, &format!("routed profile {w}"));
    }

    let ring = gmap_serve::shard::Ring::new(&fleet.peers);
    let kmeans = &expected
        .iter()
        .find(|(w, _)| w == "kmeans")
        .expect("kmeans expectation")
        .1;
    let set = ring.replica_set(&kmeans.model_id, 2);
    let (owner, successor) = (set[0].to_string(), set[1].to_string());
    let victim = fleet
        .peers
        .iter()
        .position(|p| *p == owner)
        .expect("owner is a fleet member");

    // The successor can answer /v1/evaluate for the model only once the
    // replica copy has arrived — poll until replication lands.
    let eval_body = eval_req(&kmeans.model_id);
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let r =
            client::post_json(&successor, "/v1/evaluate", &eval_body).expect("successor reachable");
        if r.status == 200 {
            assert_eq!(
                r.body, kmeans.evaluate_body,
                "replica copy must evaluate byte-identically"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "replication to the successor never landed (last status {})",
            r.status
        );
        thread::sleep(Duration::from_millis(25));
    }
    let sent_total: f64 = fleet
        .peers
        .iter()
        .map(|p| route_metric(p, "gmap_replication_total"))
        .sum();
    assert!(
        sent_total >= 1.0,
        "replication pushes must be counted across the fleet"
    );

    // Kill the owner; the router's breaker must eject it (passive
    // failures plus failed /healthz probes), and the successor must
    // serve the victim's keys from its replica copy with zero
    // recompute: its miss counter stays exactly where it was.
    let misses_before = route_metric(&successor, "gmap_cache_misses_total");
    fleet.kill(victim);
    wait_for_metric(
        &addr,
        "gmap_peer_ejections_total",
        |v| v >= 1.0,
        "the router to eject the killed owner",
    );
    let policy = retry_policy();
    let r = client::request_with_retry(
        &addr,
        "POST",
        "/v1/profile",
        Some(&profile_req("kmeans")),
        &policy,
    )
    .expect("routed profile with the owner dead");
    assert_eq!(r.status, 200, "owner-dead routed profile: {}", r.body);
    verify_profile(&r.body, kmeans, "owner-dead routed profile");
    let r = client::request_with_retry(&addr, "POST", "/v1/evaluate", Some(&eval_body), &policy)
        .expect("routed evaluate with the owner dead");
    assert_eq!(r.status, 200, "owner-dead routed evaluate: {}", r.body);
    assert_eq!(
        r.body, kmeans.evaluate_body,
        "owner-dead routed evaluate must be byte-identical"
    );
    let misses_after = route_metric(&successor, "gmap_cache_misses_total");
    assert!(
        misses_after <= misses_before,
        "the successor must serve the victim's keys from its replica copy, not recompute \
         (misses {misses_before} -> {misses_after})"
    );

    // Restart the victim: the router's half-open probe must close the
    // breaker again, and a clean routed pass stays byte-identical.
    fleet.restart(victim);
    wait_for_metric(
        &addr,
        "gmap_peer_recoveries_total",
        |v| v >= 1.0,
        "the router to re-admit the restarted owner",
    );
    for (w, want) in &expected {
        let r = client::request_with_retry(
            &addr,
            "POST",
            "/v1/profile",
            Some(&profile_req(w)),
            &policy,
        )
        .expect("clean routed profile");
        assert_eq!(r.status, 200, "clean routed profile {w}: {}", r.body);
        verify_profile(&r.body, want, &format!("clean routed {w}"));
    }
    router.shutdown();
    fleet.shutdown();
}

/// Hinted handoff: models stored while a replica-set peer is ejected
/// are owed to it as hints and replayed once health probes see the
/// peer again — the restarted peer ends up holding the model.
#[test]
fn replicated_hinted_handoff_replays_after_victim_restart() {
    let expected = expectations();
    let fleet = start_repl_fleet(3);
    let ring = gmap_serve::shard::Ring::new(&fleet.peers);
    let kmeans = &expected
        .iter()
        .find(|(w, _)| w == "kmeans")
        .expect("kmeans expectation")
        .1;
    let set = ring.replica_set(&kmeans.model_id, 2);
    let (owner, successor) = (set[0].to_string(), set[1].to_string());
    let victim = fleet
        .peers
        .iter()
        .position(|p| *p == successor)
        .expect("successor is a fleet member");

    // Kill the successor and wait until the owner's breaker ejects it,
    // so the upcoming store is *hinted* rather than pushed.
    fleet.kill(victim);
    wait_for_metric(
        &owner,
        "gmap_peer_ejections_total",
        |v| v >= 1.0,
        "the owner to eject the killed successor",
    );

    // Store the model on its owner: replication toward the ejected
    // successor becomes a hint.
    let r = client::post_json(&owner, "/v1/profile", &profile_req("kmeans"))
        .expect("owner profile reachable");
    assert_eq!(r.status, 200, "owner profile: {}", r.body);
    verify_profile(&r.body, kmeans, "owner profile");
    wait_for_metric(
        &owner,
        "gmap_hints_queued_total",
        |v| v >= 1.0,
        "the owner to record a hint for the dead successor",
    );

    // Restart the victim: probes re-admit it, the hint replays, and the
    // model materializes on the successor without it ever recomputing.
    fleet.restart(victim);
    wait_for_metric(
        &owner,
        "gmap_hints_replayed_total",
        |v| v >= 1.0,
        "the owner to replay the hint after the restart",
    );
    wait_for_metric(
        &owner,
        "gmap_peer_recoveries_total",
        |v| v >= 1.0,
        "the owner to count the successor's recovery",
    );
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let r = client::post_json(&successor, "/v1/evaluate", &eval_req(&kmeans.model_id))
            .expect("successor reachable after restart");
        if r.status == 200 {
            assert_eq!(
                r.body, kmeans.evaluate_body,
                "the replayed model must evaluate byte-identically"
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "the replayed hint never materialized on the successor (last status {})",
            r.status
        );
        thread::sleep(Duration::from_millis(25));
    }
    fleet.shutdown();
}

/// Graceful decommission: `/v1/admin/drain` flips the replica to
/// draining (visible on `/healthz` and `/metrics`), streams every held
/// model to ring successors, and loses nothing — every key remains
/// servable elsewhere.
#[test]
fn replicated_drain_decommissions_without_losing_keys() {
    let expected = expectations();
    let fleet = start_repl_fleet(3);
    let drained = fleet.peers[0].clone();

    // Load every workload onto replica 0 directly: it now holds all
    // three models regardless of ring ownership.
    for (w, want) in &expected {
        let r =
            client::post_json(&drained, "/v1/profile", &profile_req(w)).expect("profile reachable");
        assert_eq!(r.status, 200, "profile {w}: {}", r.body);
        verify_profile(&r.body, want, &format!("drain-prep {w}"));
    }

    let r = client::post_json(&drained, "/v1/admin/drain", "").expect("drain reachable");
    assert_eq!(r.status, 200, "drain: {}", r.body);
    let resp: gmap_serve::api::DrainResponse =
        serde_json::from_str(&r.body).expect("drain response parses");
    assert_eq!(resp.status, "draining");
    assert_eq!(
        resp.keys,
        expected.len(),
        "drain must stream every held model"
    );
    assert_eq!(resp.failed, 0, "a healthy fleet loses no keys on drain");
    assert_eq!(resp.pushed, expected.len());

    // The drained state is advertised to probers and scrapes.
    let h = client::get(&drained, "/healthz").expect("healthz reachable");
    assert!(
        h.body.contains("\"draining\""),
        "healthz must advertise draining: {}",
        h.body
    );
    assert_eq!(route_metric(&drained, "gmap_draining"), 1.0);

    // Zero lost keys: every model replica 0 held is now servable on
    // some *other* fleet member, byte-identically.
    for (w, want) in &expected {
        let served_elsewhere = fleet.peers[1..].iter().any(|peer| {
            let r = client::post_json(peer, "/v1/evaluate", &eval_req(&want.model_id))
                .expect("peer reachable");
            r.status == 200 && r.body == want.evaluate_body
        });
        assert!(
            served_elsewhere,
            "model for {w} must survive the drain on a successor"
        );
    }
    fleet.shutdown();
}
