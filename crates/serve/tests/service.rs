//! End-to-end acceptance tests for `gmap serve`, driving a live server
//! over real TCP connections.
//!
//! Covers the contract from the service-layer design:
//! * ≥ 32 concurrent client connections whose payload statistics are
//!   byte-identical to direct library calls,
//! * repeat profile requests observed as cache hits in `/metrics`,
//! * queue overflow answered with 429 (no hang, no crash),
//! * graceful shutdown that drains every accepted request.

use gmap_core::cachekey::canonical_json;
use gmap_serve::api::{
    AnalyzeRequest, AnalyzeResponse, CloneRequest, CloneResponse, EvaluateRequest,
    EvaluateResponse, GridPoint, ProfileRequest, ProfileResponse, StridePoint,
};
use gmap_serve::cache::ModelStore;
use gmap_serve::faults::FaultSpec;
use gmap_serve::metrics::{scrape, Metrics};
use gmap_serve::{client, handlers, ServeConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::thread;
use std::time::{Duration, Instant};

const WORKLOADS: [&str; 4] = ["kmeans", "hotspot", "bfs", "srad"];

fn start(config: ServeConfig) -> (gmap_serve::ServerHandle, String) {
    let handle = gmap_serve::start(config).expect("bind ephemeral port");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn profile_req(workload: &str, scale: &str) -> String {
    canonical_json(&ProfileRequest {
        workload: Some(workload.into()),
        scale: Some(scale.into()),
        spec: None,
    })
}

fn lru_grid() -> Vec<GridPoint> {
    [16u64, 32, 64]
        .iter()
        .map(|&size_kb| GridPoint {
            level: None,
            size_kb,
            assoc: 4,
            line: None,
            policy: None,
            stride_prefetch: None,
            stream_prefetch: None,
        })
        .collect()
}

/// A slow grid for queue-saturation tests: PLRU has no stack-distance
/// evaluator, so every point runs a full per-config simulation.
fn slow_grid(points: usize) -> Vec<GridPoint> {
    (0..points)
        .map(|i| GridPoint {
            level: None,
            size_kb: 16 << (i as u64 % 4),
            assoc: 4,
            line: None,
            policy: Some("plru".into()),
            stride_prefetch: None,
            stream_prefetch: None,
        })
        .collect()
}

/// A fig6c-shaped grid: three L1 sizes crossed with stride-prefetcher
/// degrees and distances, all single-pass eligible.
fn prefetch_grid() -> Vec<GridPoint> {
    let mut grid = Vec::new();
    for size_kb in [8u64, 16, 64] {
        for degree in [1u32, 2, 4] {
            for distance in [1u32, 2] {
                grid.push(GridPoint {
                    level: None,
                    size_kb,
                    assoc: 4,
                    line: None,
                    policy: None,
                    stride_prefetch: Some(StridePoint {
                        table: 64,
                        degree,
                        distance: Some(distance),
                        confidence: None,
                    }),
                    stream_prefetch: None,
                });
            }
        }
    }
    grid
}

/// Local "direct library call" oracle: the same handlers run in-process
/// against a private store, no HTTP involved.
struct Oracle {
    store: ModelStore,
    metrics: Metrics,
}

impl Oracle {
    fn new() -> Self {
        Oracle {
            store: ModelStore::new(None).expect("memory store"),
            metrics: Metrics::new(),
        }
    }

    fn profile(&self, workload: &str) -> ProfileResponse {
        let req = ProfileRequest {
            workload: Some(workload.into()),
            scale: Some("tiny".into()),
            spec: None,
        };
        handlers::profile(&self.store, &self.metrics, &req, &AtomicBool::new(false))
            .expect("direct profile succeeds")
    }

    fn clone_stats(&self, model_id: &str) -> CloneResponse {
        let req = CloneRequest {
            model_id: model_id.into(),
            factor: None,
            seed: None,
        };
        handlers::clone_model(&self.store, &req, &AtomicBool::new(false))
            .expect("direct clone succeeds")
    }

    fn evaluate(&self, model_id: &str, grid: Vec<GridPoint>) -> EvaluateResponse {
        let req = EvaluateRequest {
            model_id: model_id.into(),
            kernel: None,
            metric: None,
            seed: None,
            grid,
        };
        handlers::evaluate(&self.store, &req, &AtomicBool::new(false))
            .expect("direct evaluate succeeds")
    }
}

#[test]
fn concurrent_clients_get_payloads_byte_identical_to_direct_calls() {
    let (handle, addr) = start(ServeConfig {
        workers: 4,
        queue_capacity: 64,
        deadline: Duration::from_secs(120),
        ..ServeConfig::default()
    });

    // Direct-library expectations, computed once per workload.
    let oracle = Oracle::new();
    let expected: Vec<(String, ProfileResponse, CloneResponse, EvaluateResponse)> = WORKLOADS
        .iter()
        .map(|w| {
            let p = oracle.profile(w);
            let c = oracle.clone_stats(&p.model_id);
            let e = oracle.evaluate(&p.model_id, lru_grid());
            (w.to_string(), p, c, e)
        })
        .collect();

    // Warm the server cache so the 32 concurrent profile requests below
    // are all deterministic cache hits.
    for w in WORKLOADS {
        let resp = client::post_json(&addr, "/v1/profile", &profile_req(w, "tiny"))
            .expect("server reachable");
        assert_eq!(resp.status, 200, "warmup failed: {}", resp.body);
    }

    let threads: Vec<_> = (0..32)
        .map(|i| {
            let addr = addr.clone();
            let (workload, want_profile, want_clone, want_eval) =
                expected[i % WORKLOADS.len()].clone();
            thread::spawn(move || {
                // Profile: statistics block must be byte-identical; the
                // `cached` flag is the server's own business.
                let resp = client::post_json(&addr, "/v1/profile", &profile_req(&workload, "tiny"))
                    .expect("profile request");
                assert_eq!(resp.status, 200, "profile: {}", resp.body);
                let served: ProfileResponse =
                    serde_json::from_str(&resp.body).expect("profile body parses");
                assert!(served.cached, "cache was warmed");
                assert_eq!(served.model_id, want_profile.model_id);
                assert_eq!(
                    canonical_json(&served.stats),
                    canonical_json(&want_profile.stats),
                    "{workload}: served stats must be byte-identical to direct call"
                );

                // Clone: whole body is deterministic.
                let body = canonical_json(&CloneRequest {
                    model_id: want_profile.model_id.clone(),
                    factor: None,
                    seed: None,
                });
                let resp = client::post_json(&addr, "/v1/clone", &body).expect("clone request");
                assert_eq!(resp.status, 200, "clone: {}", resp.body);
                assert_eq!(
                    resp.body,
                    canonical_json(&want_clone),
                    "{workload}: clone body must be byte-identical to direct call"
                );

                // Evaluate: whole body is deterministic.
                let body = canonical_json(&EvaluateRequest {
                    model_id: want_profile.model_id.clone(),
                    kernel: None,
                    metric: None,
                    seed: None,
                    grid: lru_grid(),
                });
                let resp =
                    client::post_json(&addr, "/v1/evaluate", &body).expect("evaluate request");
                assert_eq!(resp.status, 200, "evaluate: {}", resp.body);
                assert_eq!(
                    resp.body,
                    canonical_json(&want_eval),
                    "{workload}: evaluate body must be byte-identical to direct call"
                );
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread succeeds");
    }

    // Repeat profile requests are visible as cache hits.
    let metrics = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(metrics.status, 200);
    let hits = scrape(&metrics.body, "gmap_cache_hits_total").expect("hits exported");
    let misses = scrape(&metrics.body, "gmap_cache_misses_total").expect("misses exported");
    assert_eq!(misses, WORKLOADS.len() as f64, "one miss per warmup");
    assert_eq!(hits, 32.0, "every concurrent profile request hit the cache");
    assert_eq!(
        scrape(&metrics.body, "gmap_models_cached"),
        Some(WORKLOADS.len() as f64)
    );
    assert!(
        metrics
            .body
            .contains("gmap_request_latency_seconds{endpoint=\"evaluate\",quantile=\"0.5\"}"),
        "latency quantiles exported"
    );

    handle.shutdown();
}

#[test]
fn queue_overflow_returns_429_without_hanging() {
    let (handle, addr) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        deadline: Duration::from_secs(120),
        ..ServeConfig::default()
    });

    // Warm one model so burst requests would be instant if ever executed.
    let resp = client::post_json(&addr, "/v1/profile", &profile_req("srad", "default"))
        .expect("server reachable");
    assert_eq!(resp.status, 200, "warmup failed: {}", resp.body);
    let model_id: ProfileResponse = serde_json::from_str(&resp.body).expect("parses");
    let model_id = model_id.model_id;

    // Occupy the single worker (and the single queue slot) with slow
    // PLRU-policy evaluations that bypass the single-pass engine (FIFO
    // no longer qualifies — it plans single-pass now).
    let eval_body = canonical_json(&EvaluateRequest {
        model_id: model_id.clone(),
        kernel: None,
        metric: None,
        seed: None,
        grid: slow_grid(64),
    });
    let spawn_occupier = || {
        let addr = addr.clone();
        let body = eval_body.clone();
        thread::spawn(move || {
            client::post_json(&addr, "/v1/evaluate", &body).expect("evaluate request")
        })
    };
    let wait_for = |metric: &str, value: f64| {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            let m = client::get(&addr, "/metrics").expect("metrics reachable");
            if scrape(&m.body, metric) == Some(value) {
                break;
            }
            assert!(Instant::now() < deadline, "{metric} never reached {value}");
            thread::sleep(Duration::from_millis(2));
        }
    };
    // Occupy the worker first, then fill the single queue slot — in two
    // observed steps, so neither occupier can race the other into a 429.
    let first = spawn_occupier();
    wait_for("gmap_jobs_in_flight", 1.0);
    let second = spawn_occupier();
    wait_for("gmap_queue_depth", 1.0);
    let occupiers = vec![first, second];

    let burst: Vec<_> = (0..32)
        .map(|_| {
            let addr = addr.clone();
            let body = profile_req("srad", "default");
            thread::spawn(move || {
                client::post_json(&addr, "/v1/profile", &body)
                    .expect("burst request gets a response")
            })
        })
        .collect();
    let mut rejected = 0;
    for t in burst {
        let resp = t.join().expect("burst thread returns");
        assert!(
            resp.status == 429 || resp.status == 200,
            "burst must be answered, got {}: {}",
            resp.status,
            resp.body
        );
        if resp.status == 429 {
            assert!(resp.body.contains("queue is full"), "structured 429 body");
            rejected += 1;
        }
    }
    assert!(
        rejected >= 25,
        "expected the saturated queue to reject most of the burst, got {rejected}/32"
    );

    // The occupiers were accepted before the burst and must complete.
    for t in occupiers {
        let resp = t.join().expect("occupier returns");
        assert_eq!(resp.status, 200, "occupier: {}", resp.body);
    }

    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    let rejected_metric = scrape(&m.body, "gmap_queue_rejected_total").expect("exported");
    assert!(rejected_metric >= f64::from(rejected), "rejections counted");

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_every_accepted_request() {
    let (handle, addr) = start(ServeConfig {
        workers: 2,
        queue_capacity: 32,
        deadline: Duration::from_secs(120),
        ..ServeConfig::default()
    });

    let resp = client::post_json(&addr, "/v1/profile", &profile_req("srad", "default"))
        .expect("server reachable");
    assert_eq!(resp.status, 200, "warmup failed: {}", resp.body);
    let profile: ProfileResponse = serde_json::from_str(&resp.body).expect("parses");

    // Six slow jobs: two run immediately, four queue behind them.
    let eval_body = canonical_json(&EvaluateRequest {
        model_id: profile.model_id,
        kernel: None,
        metric: None,
        seed: None,
        grid: slow_grid(32),
    });
    let clients: Vec<_> = (0..6)
        .map(|_| {
            let addr = addr.clone();
            let body = eval_body.clone();
            thread::spawn(move || {
                client::post_json(&addr, "/v1/evaluate", &body).expect("evaluate answered")
            })
        })
        .collect();

    // Only shut down once the server has accepted all six connections.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = client::get(&addr, "/metrics").expect("metrics reachable");
        // The metrics connection itself is active too, hence >= 7.
        if scrape(&m.body, "gmap_active_connections").unwrap_or(0.0) >= 7.0 {
            break;
        }
        assert!(Instant::now() < deadline, "requests never became active");
        thread::sleep(Duration::from_millis(2));
    }

    handle.shutdown();

    // Every accepted request was answered with real results.
    let mut bodies = Vec::new();
    for t in clients {
        let resp = t.join().expect("client thread returns");
        assert_eq!(resp.status, 200, "drained request: {}", resp.body);
        bodies.push(resp.body);
    }
    assert!(
        bodies.windows(2).all(|w| w[0] == w[1]),
        "identical requests produced identical drained responses"
    );

    // And the listener is really gone.
    assert!(
        client::get(&addr, "/healthz").is_err(),
        "server must be unreachable after shutdown"
    );
}

#[test]
fn inadmissible_specs_are_rejected_422_before_the_queue() {
    let (handle, addr) = start(ServeConfig::default());

    // An out-of-bounds inline spec: answered 422 on the connection
    // thread, before the job queue.
    let bad = canonical_json(&ProfileRequest {
        workload: None,
        scale: None,
        spec: Some(gmap_analyze::fixtures::oob_affine()),
    });
    let resp = client::post_json(&addr, "/v1/profile", &bad).expect("reachable");
    assert_eq!(resp.status, 422, "gate rejects: {}", resp.body);
    assert!(resp.body.contains("static analysis"), "{}", resp.body);

    // `/v1/analyze` explains the rejection with the full report.
    let areq = canonical_json(&AnalyzeRequest {
        workload: None,
        scale: None,
        spec: Some(gmap_analyze::fixtures::oob_affine()),
    });
    let resp = client::post_json(&addr, "/v1/analyze", &areq).expect("reachable");
    assert_eq!(resp.status, 200, "analyze answers: {}", resp.body);
    let report: AnalyzeResponse = serde_json::from_str(&resp.body).expect("parses");
    assert!(!report.admissible);
    assert!(report.errors >= 1);
    assert!(report.report.has_errors());

    // A clean inline spec sails through the gate and gets profiled.
    let good = canonical_json(&ProfileRequest {
        workload: None,
        scale: None,
        spec: Some(gmap_analyze::fixtures::clean_streaming()),
    });
    let resp = client::post_json(&addr, "/v1/profile", &good).expect("reachable");
    assert_eq!(resp.status, 200, "clean spec profiles: {}", resp.body);
    let profiled: ProfileResponse = serde_json::from_str(&resp.body).expect("parses");
    assert!(!profiled.cached);

    // The rejection is counted, and the rejected spec never reached the
    // profiler: exactly one cache miss (the clean spec).
    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(scrape(&m.body, "gmap_analyze_rejects_total"), Some(1.0));
    assert_eq!(scrape(&m.body, "gmap_cache_misses_total"), Some(1.0));

    handle.shutdown();
}

#[test]
fn racy_specs_are_rejected_422_and_counted_in_metrics() {
    let (handle, addr) = start(ServeConfig::default());

    // A barrier-phased kernel with a proven cross-warp write-write race:
    // the admission gate answers 422 and the race counter moves.
    let racy = canonical_json(&ProfileRequest {
        workload: None,
        scale: None,
        spec: Some(gmap_analyze::fixtures::race_ww()),
    });
    let resp = client::post_json(&addr, "/v1/profile", &racy).expect("reachable");
    assert_eq!(resp.status, 422, "gate rejects races: {}", resp.body);
    assert!(resp.body.contains("race"), "{}", resp.body);

    // `/v1/analyze` returns the verdict table and counts races too.
    let areq = canonical_json(&AnalyzeRequest {
        workload: None,
        scale: None,
        spec: Some(gmap_analyze::fixtures::race_interblock()),
    });
    let resp = client::post_json(&addr, "/v1/analyze", &areq).expect("reachable");
    assert_eq!(resp.status, 200, "analyze answers: {}", resp.body);
    let report: AnalyzeResponse = serde_json::from_str(&resp.body).expect("parses");
    assert!(!report.admissible);
    assert!(!report.report.race_certified);
    assert!(!report.report.races.is_empty(), "verdict table served");

    // A certified phased kernel profiles cleanly without touching the
    // race counter.
    let good = canonical_json(&ProfileRequest {
        workload: None,
        scale: None,
        spec: Some(gmap_analyze::fixtures::phased_reduction()),
    });
    let resp = client::post_json(&addr, "/v1/profile", &good).expect("reachable");
    assert_eq!(resp.status, 200, "certified spec profiles: {}", resp.body);

    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(scrape(&m.body, "gmap_analyze_rejects_total"), Some(1.0));
    // race-ww carries one proven race finding; race-interblock one more.
    assert_eq!(scrape(&m.body, "gmap_analyze_races_total"), Some(2.0));

    handle.shutdown();
}

#[test]
fn prefetcher_grids_evaluate_single_pass_and_match_direct_calls() {
    let (handle, addr) = start(ServeConfig::default());

    // Profile over HTTP and directly; same model id both ways.
    let resp = client::post_json(&addr, "/v1/profile", &profile_req("kmeans", "tiny"))
        .expect("server reachable");
    assert_eq!(resp.status, 200, "profile failed: {}", resp.body);
    let profiled: ProfileResponse = serde_json::from_str(&resp.body).expect("parses");

    let oracle = Oracle::new();
    let direct_profile = oracle.profile("kmeans");
    assert_eq!(profiled.model_id, direct_profile.model_id);

    // A fig6c-shaped stride-prefetcher grid: the served body must be
    // byte-identical to the direct library call, and the metadata must
    // show the single-pass engine handled it.
    let want = oracle.evaluate(&direct_profile.model_id, prefetch_grid());
    assert!(
        want.single_pass,
        "fig6c-shaped grids take the single-pass engine"
    );
    let body = canonical_json(&EvaluateRequest {
        model_id: profiled.model_id.clone(),
        kernel: None,
        metric: None,
        seed: None,
        grid: prefetch_grid(),
    });
    let resp = client::post_json(&addr, "/v1/evaluate", &body).expect("evaluate request");
    assert_eq!(resp.status, 200, "evaluate: {}", resp.body);
    assert_eq!(
        resp.body,
        canonical_json(&want),
        "served prefetcher evaluation must be byte-identical to the direct call"
    );
    let served: EvaluateResponse = serde_json::from_str(&resp.body).expect("parses");
    assert!(served.single_pass, "single-pass flag survives the wire");
    assert_eq!(served.values.len(), prefetch_grid().len());

    // An out-of-envelope prefetcher is a 400, not a worker panic.
    let mut bad = prefetch_grid();
    bad[0].stride_prefetch.as_mut().expect("stride point").table = 3;
    let body = canonical_json(&EvaluateRequest {
        model_id: profiled.model_id,
        kernel: None,
        metric: None,
        seed: None,
        grid: bad,
    });
    let resp = client::post_json(&addr, "/v1/evaluate", &body).expect("evaluate request");
    assert_eq!(resp.status, 400, "unsupported prefetcher: {}", resp.body);
    assert!(resp.body.contains("power of two"), "{}", resp.body);

    handle.shutdown();
}

#[test]
fn malformed_and_unknown_requests_get_structured_errors() {
    let (handle, addr) = start(ServeConfig::default());

    let resp = client::get(&addr, "/nope").expect("reachable");
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("\"status\":404"));

    let resp = client::post_json(&addr, "/v1/profile", "{not json").expect("reachable");
    assert_eq!(resp.status, 400);
    assert!(resp.body.contains("invalid request body"));

    let resp = client::request(&addr, "DELETE", "/v1/profile", None).expect("reachable");
    assert_eq!(resp.status, 405);

    let resp =
        client::post_json(&addr, "/v1/clone", r#"{"model_id":"doesnotexist"}"#).expect("reachable");
    assert_eq!(resp.status, 404);
    assert!(resp.body.contains("unknown model id"));

    let resp = client::get(&addr, "/healthz").expect("reachable");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body, "{\"status\":\"ok\"}");

    handle.shutdown();
}

fn wait_for_metric(addr: &str, metric: &str, pred: impl Fn(f64) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let m = client::get(addr, "/metrics").expect("metrics reachable");
        if pred(scrape(&m.body, metric).unwrap_or(f64::NAN)) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "{metric} never satisfied the predicate; last exposition:\n{}",
            m.body
        );
        thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn panicking_handler_is_a_structured_500_and_the_worker_survives() {
    // panic=1: every queued job panics while the injector is armed.
    let (handle, addr) = start(ServeConfig {
        workers: 1,
        faults: Some(FaultSpec::parse("9:panic=1").expect("valid spec")),
        ..ServeConfig::default()
    });

    let resp = client::post_json(&addr, "/v1/profile", &profile_req("kmeans", "tiny"))
        .expect("panicked request still gets a response");
    assert_eq!(resp.status, 500, "structured 500: {}", resp.body);
    assert!(
        resp.body.contains("handler panicked"),
        "the body names the failure: {}",
        resp.body
    );

    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(scrape(&m.body, "gmap_worker_panics_total"), Some(1.0));

    // Disarm and reuse the same single worker: it survived the panic.
    handle
        .state()
        .fault_injector()
        .expect("faults configured")
        .set_armed(false);
    let resp = client::post_json(&addr, "/v1/profile", &profile_req("kmeans", "tiny"))
        .expect("server reachable");
    assert_eq!(resp.status, 200, "worker still serves: {}", resp.body);

    handle.shutdown();
}

#[test]
fn deadline_expired_in_queue_is_shed_without_executing() {
    // One worker, every job slowed well past the deadline: the first job
    // occupies the worker while the rest expire in the queue. No job may
    // ever reach the profiler — `gmap_cache_misses_total` stays 0.
    let (handle, addr) = start(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(150),
        faults: Some(FaultSpec::parse("7:slow=1,slow_ms=400").expect("valid spec")),
        ..ServeConfig::default()
    });

    let clients: Vec<_> = ["kmeans", "bfs", "hotspot"]
        .iter()
        .map(|w| {
            let addr = addr.clone();
            let body = profile_req(w, "tiny");
            thread::spawn(move || {
                client::post_json(&addr, "/v1/profile", &body).expect("request answered")
            })
        })
        .collect();
    for t in clients {
        let resp = t.join().expect("client thread returns");
        assert_eq!(resp.status, 504, "expired request: {}", resp.body);
    }

    // Let the queue drain, then check what actually executed.
    wait_for_metric(&addr, "gmap_queue_depth", |v| v == 0.0);
    wait_for_metric(&addr, "gmap_jobs_in_flight", |v| v == 0.0);
    wait_for_metric(&addr, "gmap_jobs_shed_total", |v| v >= 1.0);
    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(
        scrape(&m.body, "gmap_cache_misses_total"),
        Some(0.0),
        "no shed or cancelled job may run a simulation"
    );
    assert_eq!(scrape(&m.body, "gmap_deadline_timeouts_total"), Some(3.0));

    handle.shutdown();
}

#[test]
fn routed_deadline_expires_in_peer_queue_without_executing() {
    // The replica's own deadline is a generous 30s and every job is
    // slowed 400ms — on its own it would happily serve 200s. Behind a
    // router with a 150ms deadline the propagated budget must take over:
    // the router answers 504 and the peer sheds the queued jobs without
    // ever reaching the profiler.
    let (peer, peer_addr) = start(ServeConfig {
        workers: 1,
        deadline: Duration::from_secs(30),
        faults: Some(FaultSpec::parse("7:slow=1,slow_ms=400").expect("valid spec")),
        ..ServeConfig::default()
    });
    let (router, router_addr) = start(ServeConfig {
        workers: 1,
        deadline: Duration::from_millis(150),
        route: Some(vec![peer_addr.clone()]),
        ..ServeConfig::default()
    });

    let clients: Vec<_> = ["kmeans", "bfs", "hotspot"]
        .iter()
        .map(|w| {
            let addr = router_addr.clone();
            let body = profile_req(w, "tiny");
            thread::spawn(move || {
                client::post_json(&addr, "/v1/profile", &body).expect("request answered")
            })
        })
        .collect();
    for t in clients {
        let resp = t.join().expect("client thread returns");
        assert_eq!(resp.status, 504, "routed expired request: {}", resp.body);
        assert!(
            resp.retry_after.is_some(),
            "routed 504 carries Retry-After: {}",
            resp.body
        );
    }

    // The peer enforced the router's budget, not its own 30s deadline,
    // and no shed or cancelled job ever ran a simulation.
    wait_for_metric(&peer_addr, "gmap_queue_depth", |v| v == 0.0);
    wait_for_metric(&peer_addr, "gmap_jobs_in_flight", |v| v == 0.0);
    wait_for_metric(&peer_addr, "gmap_jobs_shed_total", |v| v >= 1.0);
    let m = client::get(&peer_addr, "/metrics").expect("peer metrics reachable");
    assert_eq!(
        scrape(&m.body, "gmap_cache_misses_total"),
        Some(0.0),
        "propagated deadlines must shed work before it executes"
    );
    assert_eq!(scrape(&m.body, "gmap_deadline_timeouts_total"), Some(3.0));

    // Every request was genuinely forwarded (the 504s are the peer's
    // honest answers relayed by the router, not router-local failures).
    let m = client::get(&router_addr, "/metrics").expect("router metrics reachable");
    let series = format!("gmap_route_forwards_total{{peer=\"{peer_addr}\"}}");
    assert_eq!(scrape(&m.body, &series), Some(3.0), "all three forwarded");
    assert_eq!(scrape(&m.body, "gmap_route_failovers_total"), Some(0.0));

    router.shutdown();
    peer.shutdown();
}

#[test]
fn memory_tier_never_exceeds_its_configured_capacity() {
    let (handle, addr) = start(ServeConfig {
        cache_capacity: 2,
        ..ServeConfig::default()
    });

    for w in WORKLOADS {
        let resp = client::post_json(&addr, "/v1/profile", &profile_req(w, "tiny"))
            .expect("server reachable");
        assert_eq!(resp.status, 200, "profile {w}: {}", resp.body);
        let m = client::get(&addr, "/metrics").expect("metrics reachable");
        let cached = scrape(&m.body, "gmap_models_cached").expect("gauge exported");
        assert!(
            cached <= 2.0,
            "memory tier exceeded its bound after {w}: {cached}"
        );
    }

    let m = client::get(&addr, "/metrics").expect("metrics reachable");
    assert_eq!(scrape(&m.body, "gmap_cache_capacity"), Some(2.0));
    assert_eq!(
        scrape(&m.body, "gmap_cache_evictions_total"),
        Some((WORKLOADS.len() - 2) as f64),
        "evictions are visible in /metrics"
    );

    handle.shutdown();
}

/// One raw response off a keep-alive connection, with the headers the
/// tests assert on.
struct RawResponse {
    status: u16,
    connection: String,
    retry_after: Option<u64>,
    body: String,
}

/// Reads one full response from a keep-alive connection.
fn read_one_response(reader: &mut BufReader<TcpStream>) -> RawResponse {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("parseable status");
    let mut content_length = 0usize;
    let mut connection = String::new();
    let mut retry_after = None;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header line");
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((k, v)) = header.split_once(':') {
            match k.to_ascii_lowercase().as_str() {
                "content-length" => content_length = v.trim().parse().expect("length"),
                "connection" => connection = v.trim().to_string(),
                "retry-after" => retry_after = v.trim().parse().ok(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    RawResponse {
        status,
        connection,
        retry_after,
        body: String::from_utf8(body).expect("utf8"),
    }
}

#[test]
fn keep_alive_serves_multiple_requests_then_caps_the_connection() {
    let (handle, addr) = start(ServeConfig {
        keepalive_max: 2,
        ..ServeConfig::default()
    });

    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let request = format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\n\r\n");

    // First request: served and kept alive.
    stream.write_all(request.as_bytes()).expect("write");
    let r = read_one_response(&mut reader);
    assert_eq!(r.status, 200);
    assert_eq!(r.connection, "keep-alive");
    assert_eq!(r.body, "{\"status\":\"ok\"}");

    // Second request on the same socket: served, then capped (the
    // per-connection request limit downgrades to `Connection: close`).
    stream.write_all(request.as_bytes()).expect("write");
    let r = read_one_response(&mut reader);
    assert_eq!(r.status, 200);
    assert_eq!(r.connection, "close");
    assert_eq!(r.body, "{\"status\":\"ok\"}");

    // And the server really closes: the next read sees EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("EOF after cap");
    assert!(rest.is_empty(), "no bytes after the capped response");

    // A client that asks to close is honored immediately.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(
            format!("GET /healthz HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .expect("write");
    let r = read_one_response(&mut reader);
    assert_eq!(r.status, 200);
    assert_eq!(r.connection, "close");

    handle.shutdown();
}

#[test]
fn mid_request_stall_gets_408_and_oversized_body_gets_413() {
    let (handle, addr) = start(ServeConfig {
        read_timeout: Duration::from_millis(200),
        idle_timeout: Duration::from_millis(200),
        ..ServeConfig::default()
    });

    // Truncated body: the head promises bytes that never arrive. After
    // `read_timeout` the server answers 408 and closes.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(b"POST /v1/profile HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"wor")
        .expect("write partial");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let r = read_one_response(&mut reader);
    assert_eq!(r.status, 408, "stalled mid-request: {}", r.body);
    assert_eq!(r.connection, "close");
    // A 408 is transient (the peer can simply resend): it must carry
    // the same Retry-After hint as the other transient statuses.
    assert_eq!(
        r.retry_after,
        Some(1),
        "408 responses must carry Retry-After"
    );

    // Oversized Content-Length: rejected up front with 413.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    stream
        .write_all(b"POST /v1/profile HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")
        .expect("write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let r = read_one_response(&mut reader);
    assert_eq!(r.status, 413);
    assert_eq!(r.connection, "close");
    // 413 is *not* transient — resending the same oversized body can
    // never succeed, so no Retry-After is advertised.
    assert_eq!(r.retry_after, None, "413 must not invite a retry");

    // An idle peer is closed silently (no 408 spam for quiet sockets).
    let stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty(), "idle close sends nothing");

    handle.shutdown();
}

#[test]
fn backpressure_responses_carry_retry_after_and_the_client_honors_it() {
    let (handle, addr) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        deadline: Duration::from_secs(120),
        ..ServeConfig::default()
    });

    // Saturate the single worker and the single queue slot.
    let resp = client::post_json(&addr, "/v1/profile", &profile_req("srad", "default"))
        .expect("server reachable");
    assert_eq!(resp.status, 200, "warmup failed: {}", resp.body);
    let profile: ProfileResponse = serde_json::from_str(&resp.body).expect("parses");
    let eval_body = canonical_json(&EvaluateRequest {
        model_id: profile.model_id,
        kernel: None,
        metric: None,
        seed: None,
        grid: slow_grid(64),
    });
    // An 8-deep concurrent burst against one worker and one queue slot:
    // most of it must bounce off the full queue with 429 + Retry-After.
    let occupiers: Vec<_> = (0..8)
        .map(|_| {
            let addr = addr.clone();
            let body = eval_body.clone();
            thread::spawn(move || {
                client::post_json(&addr, "/v1/evaluate", &body).expect("evaluate request")
            })
        })
        .collect();

    // Meanwhile a retrying client keeps knocking: it may eat 429s while
    // the burst drains (honoring Retry-After, clamped by the policy
    // cap) but must eventually land the request.
    let retrier = {
        let addr = addr.clone();
        thread::spawn(move || {
            client::request_with_retry(
                &addr,
                "POST",
                "/v1/profile",
                Some(&profile_req("kmeans", "tiny")),
                &client::RetryPolicy {
                    max_retries: 120,
                    base: Duration::from_millis(25),
                    cap: Duration::from_millis(500),
                    seed: 7,
                },
            )
            .expect("retries land")
        })
    };

    let mut saw_retry_after = 0;
    for t in occupiers {
        let resp = t.join().expect("occupier returns");
        match resp.status {
            200 => {}
            429 => {
                assert_eq!(resp.retry_after, Some(1), "429 carries Retry-After");
                saw_retry_after += 1;
            }
            other => panic!("occupier: unexpected status {other}: {}", resp.body),
        }
    }
    assert!(
        saw_retry_after >= 1,
        "the burst must overflow the single-slot queue at least once"
    );
    let retried = retrier.join().expect("retrier thread returns");
    assert_eq!(retried.status, 200, "{}", retried.body);

    handle.shutdown();
}

/// A deterministic multi-warp text trace: 2 blocks x 64 threads (4
/// warps), `steps` instructions per thread in step-major order, three
/// PCs with per-step strides.
fn ingest_trace(steps: u64) -> String {
    let mut trace = String::new();
    for step in 0..steps {
        for tid in 0..128u32 {
            let pc = 0x10 + (step % 3) * 0x10;
            let addr = 0x1_0000 + u64::from(tid) * 4 + step * 0x2000;
            let kind = if step % 3 == 2 { "W" } else { "R" };
            trace.push_str(&format!("{tid} {pc:#x} {kind} {addr:#x}\n"));
        }
    }
    trace
}

#[test]
fn streaming_ingest_is_byte_identical_to_materialized_profiling() {
    use gmap_core::application::AppProfile;
    use gmap_core::profiler::ProfilerConfig;
    use gmap_gpu::hierarchy::LaunchConfig;
    use gmap_serve::api::IngestResponse;

    let (handle, addr) = start(ServeConfig::default());
    let trace = ingest_trace(50);

    // Stream the trace with chunked transfer encoding in small pieces.
    let resp = client::post_chunked(
        &addr,
        "/v1/ingest?grid=2&block=64&name=wl",
        &mut trace.as_bytes(),
        777,
    )
    .expect("chunked ingest");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let parsed: IngestResponse = serde_json::from_str(&resp.body).expect("response parses");

    // The served model must hash identically to the local
    // materialize-then-profile path over the same bytes.
    let entries = gmap_trace::io::read_text(trace.as_bytes()).expect("trace parses");
    let launch = LaunchConfig::new(2u32, 64u32);
    let profile = gmap_core::ingest::profile_thread_trace(
        "wl",
        &entries,
        &launch,
        &ProfilerConfig::default(),
    )
    .expect("non-empty trace");
    let local = AppProfile {
        name: "wl".into(),
        kernels: vec![profile],
    };
    let local_key = gmap_core::cachekey::key_of(&local);
    assert_eq!(parsed.model_id, local_key, "content-addressed by the model");
    assert_eq!(parsed.stats.content_key, local_key);
    assert_eq!(parsed.stats.kernels, 1);

    // The streaming pass's own report: every entry seen, all 4 warps,
    // and the affine access pattern classified per PC.
    assert_eq!(parsed.ingest.bytes, trace.len() as u64);
    assert_eq!(parsed.ingest.entries, 50 * 128);
    assert_eq!(parsed.report.warps, 4);
    assert!(!parsed.report.arrays.is_empty(), "arrays detected");
    assert_eq!(parsed.report.pcs.len(), 3, "three PCs classified");

    // A Content-Length upload of the same trace lands on the same model.
    let plain = client::request(
        &addr,
        "POST",
        "/v1/ingest?grid=2&block=64&name=wl",
        Some(&trace),
    )
    .expect("content-length ingest");
    assert_eq!(plain.status, 200, "{}", plain.body);
    let plain: IngestResponse = serde_json::from_str(&plain.body).expect("response parses");
    assert_eq!(plain.model_id, parsed.model_id, "framing does not matter");

    // The stored model is immediately usable by the rest of the API.
    let eval = client::post_json(
        &addr,
        "/v1/evaluate",
        &canonical_json(&EvaluateRequest {
            model_id: parsed.model_id.clone(),
            kernel: None,
            metric: None,
            seed: None,
            grid: lru_grid(),
        }),
    )
    .expect("evaluate ingested model");
    assert_eq!(eval.status, 200, "{}", eval.body);

    // Ingest metrics: two full streams, body bytes counted exactly.
    let metrics = client::get(&addr, "/metrics").expect("metrics").body;
    assert_eq!(scrape(&metrics, "gmap_ingest_streams_total"), Some(2.0));
    assert_eq!(
        scrape(&metrics, "gmap_ingest_bytes_total"),
        Some(2.0 * trace.len() as f64)
    );
    assert!(metrics.contains("gmap_requests_total{endpoint=\"ingest\"} 2"));

    handle.shutdown();
}

#[test]
fn ingest_rejects_bad_queries_and_malformed_traces() {
    let (handle, addr) = start(ServeConfig::default());

    // Missing launch geometry: rejected before any body is consumed.
    let resp = client::post_chunked(&addr, "/v1/ingest?grid=2", &mut &b"0 0x1 R 0x100\n"[..], 16)
        .expect("responds");
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(resp.body.contains("block"), "names the missing parameter");

    // Malformed trace entry mid-stream: 400 with the 1-based position.
    let resp = client::post_chunked(
        &addr,
        "/v1/ingest?grid=1&block=32",
        &mut &b"0 0x1 R 0x100\n1 0x1 Z 0x104\n"[..],
        64,
    )
    .expect("responds");
    assert_eq!(resp.status, 400, "{}", resp.body);
    assert!(
        resp.body.contains("entry 2") && resp.body.contains("kind"),
        "carries position and field: {}",
        resp.body
    );

    // An empty trace profiles to nothing: structured 400, not a panic.
    let resp = client::post_chunked(&addr, "/v1/ingest?grid=1&block=32", &mut &b""[..], 16)
        .expect("responds");
    assert_eq!(resp.status, 400, "{}", resp.body);

    // GET on the ingest route is not a thing.
    let resp = client::get(&addr, "/v1/ingest?grid=1&block=32").expect("responds");
    assert_eq!(resp.status, 404, "{}", resp.body);

    handle.shutdown();
}
