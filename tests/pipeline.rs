//! End-to-end integration: for every one of the 18 benchmark models,
//! profile → clone → simulate, and check the clone tracks the original.

use gmap::core::{
    generate::expected_accesses, profile_kernel, run_original, run_proxy, ProfilerConfig,
    SimtConfig,
};
use gmap::gpu::workloads::{self, Scale};

/// The headline claim, scaled to test size: clones reproduce L1/L2 miss
/// rates on the baseline configuration. Hotspot is exempted from the
/// tight bound — the paper itself reports it as the worst case, having
/// no dominant patterns.
#[test]
fn clones_track_originals_on_baseline() {
    let cfg = SimtConfig::default();
    for kernel in workloads::all(Scale::Tiny) {
        let orig = run_original(&kernel, &cfg).expect("baseline is valid");
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let proxy = run_proxy(&profile, &cfg).expect("baseline is valid");
        let l1_err = (orig.l1_miss_pct() - proxy.l1_miss_pct()).abs();
        let l2_err = (orig.l2_miss_pct() - proxy.l2_miss_pct()).abs();
        let bound = if kernel.name == "hotspot" { 30.0 } else { 20.0 };
        assert!(
            l1_err < bound,
            "{}: L1 miss {:.2}% vs proxy {:.2}% (err {l1_err:.2}pp)",
            kernel.name,
            orig.l1_miss_pct(),
            proxy.l1_miss_pct()
        );
        assert!(
            l2_err < bound + 10.0,
            "{}: L2 miss {:.2}% vs proxy {:.2}% (err {l2_err:.2}pp)",
            kernel.name,
            orig.l2_miss_pct(),
            proxy.l2_miss_pct()
        );
    }
}

/// The clone also reproduces the *volume* of traffic, not just rates.
#[test]
fn clones_reproduce_access_volume() {
    for name in ["kmeans", "srad", "blackscholes", "lib"] {
        let kernel = workloads::by_name(name, Scale::Tiny).expect("known");
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let orig_accesses = profile.total_warp_accesses;
        let clone_accesses = expected_accesses(&profile);
        let ratio = clone_accesses as f64 / orig_accesses as f64;
        assert!(
            (0.9..1.1).contains(&ratio),
            "{name}: clone volume ratio {ratio:.3} ({clone_accesses} vs {orig_accesses})"
        );
    }
}

/// Everything downstream of a fixed seed is bit-reproducible.
#[test]
fn pipeline_is_deterministic() {
    let cfg = SimtConfig::default();
    let kernel = workloads::bfs(Scale::Tiny);
    let p1 = profile_kernel(&kernel, &ProfilerConfig::default());
    let p2 = profile_kernel(&kernel, &ProfilerConfig::default());
    assert_eq!(p1, p2);
    let a = run_proxy(&p1, &cfg).expect("baseline is valid");
    let b = run_proxy(&p2, &cfg).expect("baseline is valid");
    assert_eq!(a, b);
}

/// The proxy must also preserve configuration *ranking* across a small
/// design sweep (the paper's correlation metric).
#[test]
fn clone_preserves_config_ranking() {
    use gmap::memsim::cache::{CacheConfig, ReplacementPolicy};
    let kernel = workloads::backprop(Scale::Tiny);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let mut orig_series = Vec::new();
    let mut proxy_series = Vec::new();
    for kb in [8u64, 32, 128] {
        let mut cfg = SimtConfig::default();
        cfg.hierarchy.l1 =
            CacheConfig::new(kb * 1024, 4, 128, ReplacementPolicy::Lru).expect("valid");
        orig_series.push(run_original(&kernel, &cfg).expect("valid").l1_miss_pct());
        proxy_series.push(run_proxy(&profile, &cfg).expect("valid").l1_miss_pct());
    }
    let corr = gmap::trace::stats::pearson(&orig_series, &proxy_series);
    assert!(
        corr > 0.8,
        "ranking correlation {corr:.3} over {orig_series:?} vs {proxy_series:?}"
    );
}

/// Scheduling statistics survive the round trip: a GTO original replayed
/// through SelfProb(SchedP_self) lands closer to the GTO original than a
/// plain LRR replay does... at minimum it reproduces a similar
/// self-scheduling probability.
#[test]
fn sched_p_self_replay_matches_measurement() {
    use gmap::gpu::schedule::Policy;
    let kernel = workloads::kmeans(Scale::Tiny);
    let mut gto = SimtConfig::default();
    gto.policy = Policy::Gto;
    let orig = run_original(&kernel, &gto).expect("valid");
    let measured = orig.schedule.sched_p_self;
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let mut replay_cfg = SimtConfig::default();
    replay_cfg.policy = Policy::SelfProb(measured);
    let replay = run_proxy(&profile, &replay_cfg).expect("valid");
    assert!(
        (replay.schedule.sched_p_self - measured).abs() < 0.25,
        "replayed SchedP_self {:.3} vs measured {:.3}",
        replay.schedule.sched_p_self,
        measured
    );
}
