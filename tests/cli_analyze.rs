//! Spawned-binary checks of `gmap analyze`: real process exit codes and
//! the JSON report schema that CI gates and scripts consume. The
//! in-process CLI tests (src/bin/gmap.rs) cover argument handling; these
//! pin the *observable* contract of the shipped binary.

use gmap::analyze::{FindingKind, StaticReport};
use std::process::{Command, Output};

fn gmap_bin(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gmap"))
        .args(args)
        .output()
        .expect("spawn gmap")
}

/// The stable finding-kind vocabulary. A CI gate or API client greps
/// for these exact strings; renaming one is a breaking change that this
/// snapshot forces to be deliberate.
#[test]
fn finding_kind_vocabulary_is_pinned() {
    let want = [
        "spec-error",
        "array-size-overflow",
        "out-of-bounds",
        "overlapping-write",
        "barrier-divergence",
        "uncoalesced",
        "race-write-write",
        "race-read-write",
        "race-potential",
    ];
    let got: Vec<&str> = FindingKind::ALL.iter().map(|k| k.as_str()).collect();
    assert_eq!(got, want, "wire vocabulary changed");
}

#[test]
fn exit_codes_gate_on_error_findings_in_every_output_mode() {
    // A proven race exits 1 whether the report is the full render, the
    // races-only table, or JSON: no output mode weakens the gate.
    for mode in [&[][..], &["--races"][..], &["--json"][..]] {
        let mut args = vec!["analyze", "--fixture", "race-rw"];
        args.extend_from_slice(mode);
        let out = gmap_bin(&args);
        assert_eq!(out.status.code(), Some(1), "mode {mode:?} must gate");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("error finding"), "{stderr}");
    }

    // A certified kernel exits 0 and shows its verdict table.
    let out = gmap_bin(&["analyze", "--fixture", "phased-stencil", "--races"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("certified race-free"), "{stdout}");
    assert!(stdout.contains("same-block"), "{stdout}");
}

#[test]
fn json_mode_round_trips_the_static_report_schema() {
    let out = gmap_bin(&["analyze", "--fixture", "race-ww", "--json"]);
    assert_eq!(out.status.code(), Some(1), "racy fixture exits 1");
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let report: StaticReport = serde_json::from_str(&stdout).expect("schema round-trips");
    assert_eq!(report.name, "race-ww");
    assert!(!report.race_certified);
    assert!(!report.races.is_empty(), "verdict table present in JSON");
    assert!(
        report
            .errors()
            .any(|f| matches!(f.kind, FindingKind::RaceWriteWrite)),
        "{:?}",
        report.findings
    );
    // Kinds serialize as the kebab-case wire strings, not Rust names.
    assert!(stdout.contains("\"race-write-write\""), "{stdout}");
    assert!(!stdout.contains("RaceWriteWrite"), "{stdout}");
}
