//! Batch-vs-scalar differential tests for the vectorized hot kernels.
//!
//! Every dual-path kernel (SoA column kernels, histogram binning, warp
//! coalescing, DRAM address decomposition, the stack-distance counting
//! pass) keeps its scalar reference implementation live; these tests pin
//! the batched path to it — exhaustively over every lane-tail length in
//! `0..2×LANES`, and with proptest-randomized content on top. Any
//! disagreement is a kernel bug by definition: the batched paths are
//! required to be bit-exact, not approximately equal.

use gmap_bench::engine::CapturedAccess;
use gmap_dram::mapping::{decompose, AddressMapping, DramGeometry, MappingPlan};
use gmap_gpu::coalesce::{coalesce_addrs_into, coalesce_addrs_scalar};
use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap_memsim::stackdist::{
    evaluate_fifo_multi_with_mode, evaluate_lru_multi_with_mode,
    evaluate_lru_prefetch_multi_with_mode, replay_per_config_prefetch, LineAccess,
    PrefetchSchedule, WriteMode,
};
use gmap_trace::batch::{KernelMode, LANES};
use gmap_trace::record::ByteAddr;
use gmap_trace::soa::AccessColumns;
use gmap_trace::Histogram;
use proptest::prelude::*;

#[test]
fn batched_mode_is_the_tier1_default() {
    // The suite must exercise the batched kernels: fail loudly if the
    // scalar escape hatch leaked into the test environment.
    assert!(gmap_trace::default_mode().is_batched());
}

// ---------------------------------------------------------------------
// SoA column kernels.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn soa_column_kernels_match_scalar(
        rows in proptest::collection::vec(
            (0u16..12, any::<u64>(), 0u64..512, any::<bool>()),
            0..3 * LANES,
        ),
        shift in 0u32..9,
    ) {
        let cols: AccessColumns = rows
            .iter()
            .map(|&(core, addr, pc, is_write)| CapturedAccess { core, addr, pc, is_write })
            .collect();
        let mut scalar = Vec::new();
        let mut batched = Vec::new();
        cols.lines_into(shift, KernelMode::Scalar, &mut scalar);
        cols.lines_into(shift, KernelMode::Batched, &mut batched);
        prop_assert_eq!(scalar, batched);
        prop_assert_eq!(
            cols.count_writes(KernelMode::Scalar),
            cols.count_writes(KernelMode::Batched)
        );
    }
}

#[test]
fn soa_kernels_cover_every_tail_length() {
    for n in 0..2 * LANES {
        let cols: AccessColumns = (0..n)
            .map(|i| CapturedAccess {
                core: (i % 3) as u16,
                addr: (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                pc: i as u64 * 8,
                is_write: i % 2 == 0,
            })
            .collect();
        let mut scalar = Vec::new();
        let mut batched = Vec::new();
        cols.lines_into(7, KernelMode::Scalar, &mut scalar);
        cols.lines_into(7, KernelMode::Batched, &mut batched);
        assert_eq!(scalar, batched, "lines n={n}");
        assert_eq!(
            cols.count_writes(KernelMode::Scalar),
            cols.count_writes(KernelMode::Batched),
            "writes n={n}"
        );
    }
}

// ---------------------------------------------------------------------
// Histogram binning.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn histogram_add_slice_matches_scalar(
        values in proptest::collection::vec(-64i64..64, 0..3 * LANES),
        preload in proptest::collection::vec(-64i64..64, 0..8),
    ) {
        // Start both sides from the same non-empty histogram so merging
        // into existing counts is covered, not just the empty case.
        let base: Histogram<i64> = preload.iter().copied().collect();
        let mut scalar = base.clone();
        let mut batched = base;
        scalar.add_slice(&values, KernelMode::Scalar);
        batched.add_slice(&values, KernelMode::Batched);
        prop_assert_eq!(scalar, batched);
    }
}

#[test]
fn histogram_add_slice_covers_every_tail_length() {
    for n in 0..2 * LANES {
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 5 - 2).collect();
        let mut scalar = Histogram::new();
        let mut batched = Histogram::new();
        scalar.add_slice(&values, KernelMode::Scalar);
        batched.add_slice(&values, KernelMode::Batched);
        assert_eq!(scalar, batched, "n={n}");
    }
}

// ---------------------------------------------------------------------
// Warp coalescing.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn coalesce_matches_scalar(
        addrs in proptest::collection::vec(0u64..1 << 20, 0..3 * LANES),
        line_shift in 5u32..8,
    ) {
        let addrs: Vec<ByteAddr> = addrs.into_iter().map(ByteAddr).collect();
        let line = 1u64 << line_shift;
        let mut scalar = Vec::new();
        let mut batched = Vec::new();
        coalesce_addrs_scalar(&addrs, line, &mut scalar);
        coalesce_addrs_into(&addrs, line, KernelMode::Batched, &mut batched);
        prop_assert_eq!(scalar, batched);
    }
}

#[test]
fn coalesce_covers_every_tail_length_sorted_and_not() {
    for n in 0..2 * LANES {
        // Ascending (takes the presorted fast path) and descending
        // (forces the sort) inputs of every tail length.
        let asc: Vec<ByteAddr> = (0..n as u64).map(|i| ByteAddr(i * 48)).collect();
        let desc: Vec<ByteAddr> = asc.iter().rev().copied().collect();
        for addrs in [asc, desc] {
            let mut scalar = Vec::new();
            let mut batched = Vec::new();
            coalesce_addrs_scalar(&addrs, 128, &mut scalar);
            coalesce_addrs_into(&addrs, 128, KernelMode::Batched, &mut batched);
            assert_eq!(scalar, batched, "n={n}");
        }
    }
}

// ---------------------------------------------------------------------
// DRAM address decomposition.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn dram_decompose_plan_matches_reference(
        addrs in proptest::collection::vec(any::<u64>(), 0..3 * LANES),
        ch_bits in 0u32..4,
        rank_bits in 0u32..2,
        bank_bits in 0u32..5,
        col_bits in 0u32..7,
        robaracoch in any::<bool>(),
    ) {
        let geom = DramGeometry {
            channels: 1 << ch_bits,
            ranks: 1 << rank_bits,
            banks: 1 << bank_bits,
            bank_groups: 1,
            columns: 1 << col_bits,
            bus_width_bytes: 8,
        };
        let mapping = if robaracoch {
            AddressMapping::RoBaRaCoCh
        } else {
            AddressMapping::ChRaBaRoCo
        };
        let plan = MappingPlan::new(&geom, mapping);
        let mut scalar = Vec::new();
        let mut batched = Vec::new();
        plan.decompose_batch(&addrs, KernelMode::Scalar, &mut scalar);
        plan.decompose_batch(&addrs, KernelMode::Batched, &mut batched);
        prop_assert_eq!(&scalar, &batched);
        // And the plan itself against the field-consuming reference.
        for (&a, loc) in addrs.iter().zip(&scalar) {
            prop_assert_eq!(*loc, decompose(a, &geom, mapping));
        }
    }
}

// ---------------------------------------------------------------------
// Stack-distance counting pass.
// ---------------------------------------------------------------------

fn small_grid(policy: ReplacementPolicy) -> Vec<CacheConfig> {
    let mut configs = Vec::new();
    for sets in [1u64, 2, 4] {
        for assoc in [1u32, 2, 3, 4] {
            let size = sets * assoc as u64 * 64;
            configs.push(CacheConfig::new(size, assoc, 64, policy).expect("valid geometry"));
        }
    }
    configs
}

proptest! {
    #[test]
    fn stackdist_lru_batched_matches_scalar_and_replay(
        accs in proptest::collection::vec((0u64..24, any::<bool>()), 0..3 * LANES),
        allocate in any::<bool>(),
    ) {
        let stream: Vec<LineAccess> =
            accs.iter().map(|&(l, w)| LineAccess::new(l, w)).collect();
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let configs = small_grid(ReplacementPolicy::Lru);
        let s = evaluate_lru_multi_with_mode(&configs, &stream, mode, KernelMode::Scalar)
            .expect("valid grid");
        let b = evaluate_lru_multi_with_mode(&configs, &stream, mode, KernelMode::Batched)
            .expect("valid grid");
        prop_assert_eq!(&s.counts, &b.counts);
        let reference = replay_per_config_prefetch(&configs, &stream, None, mode);
        prop_assert_eq!(&b.counts, &reference);
    }

    #[test]
    fn stackdist_fifo_batched_matches_scalar_and_replay(
        accs in proptest::collection::vec((0u64..24, any::<bool>()), 0..3 * LANES),
        allocate in any::<bool>(),
    ) {
        let stream: Vec<LineAccess> =
            accs.iter().map(|&(l, w)| LineAccess::new(l, w)).collect();
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let configs = small_grid(ReplacementPolicy::Fifo);
        let s = evaluate_fifo_multi_with_mode(&configs, &stream, mode, KernelMode::Scalar)
            .expect("valid grid");
        let b = evaluate_fifo_multi_with_mode(&configs, &stream, mode, KernelMode::Batched)
            .expect("valid grid");
        prop_assert_eq!(&s.counts, &b.counts);
        let reference = replay_per_config_prefetch(&configs, &stream, None, mode);
        prop_assert_eq!(&b.counts, &reference);
    }

    #[test]
    fn stackdist_prefetch_batched_matches_scalar_and_replay(
        accs in proptest::collection::vec((0u64..16, any::<bool>()), 0..2 * LANES),
        cand_lists in proptest::collection::vec(
            proptest::collection::vec(0u64..16, 0..3),
            0..2 * LANES,
        ),
        allocate in any::<bool>(),
    ) {
        let stream: Vec<LineAccess> =
            accs.iter().map(|&(l, w)| LineAccess::new(l, w)).collect();
        // Candidate lines deliberately share the demand range so the
        // candidate-equals-demand-line dedup path gets exercised.
        let mut sched = PrefetchSchedule::new();
        for i in 0..stream.len() {
            let empty = Vec::new();
            let cands = cand_lists.get(i).unwrap_or(&empty);
            sched.push(cands);
        }
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let configs = small_grid(ReplacementPolicy::Lru);
        let s = evaluate_lru_prefetch_multi_with_mode(
            &configs, &stream, &sched, mode, KernelMode::Scalar,
        ).expect("valid grid");
        let b = evaluate_lru_prefetch_multi_with_mode(
            &configs, &stream, &sched, mode, KernelMode::Batched,
        ).expect("valid grid");
        prop_assert_eq!(&s.counts, &b.counts);
        let reference = replay_per_config_prefetch(&configs, &stream, Some(&sched), mode);
        prop_assert_eq!(&b.counts, &reference);
    }

    /// Line ids beyond 32 bits must flow through the padded-row match
    /// scan untruncated — same contract, checked against both the
    /// scalar list pass and the replay.
    #[test]
    fn stackdist_wide_lines_exercise_padded_rows(
        accs in proptest::collection::vec((0u64..24, any::<bool>()), 0..3 * LANES),
        allocate in any::<bool>(),
    ) {
        const BIG: u64 = 1 << 40;
        let stream: Vec<LineAccess> =
            accs.iter().map(|&(l, w)| LineAccess::new(BIG + l, w)).collect();
        let mode = if allocate { WriteMode::Allocate } else { WriteMode::NoAllocate };
        let configs = small_grid(ReplacementPolicy::Lru);
        let s = evaluate_lru_multi_with_mode(&configs, &stream, mode, KernelMode::Scalar)
            .expect("valid grid");
        let b = evaluate_lru_multi_with_mode(&configs, &stream, mode, KernelMode::Batched)
            .expect("valid grid");
        prop_assert_eq!(&s.counts, &b.counts);
        let reference = replay_per_config_prefetch(&configs, &stream, None, mode);
        prop_assert_eq!(&b.counts, &reference);
    }
}
