//! Integration of the full stack down to DRAM (the Fig. 7 path): the
//! clone's memory-request stream must produce DRAM metrics close to the
//! original's across configurations.

use gmap::core::{profile_kernel, run_original, run_proxy, ProfilerConfig, SimtConfig};
use gmap::dram::{AddressMapping, DramConfig};
use gmap::gpu::workloads::{self, Scale};
use gmap::memsim::hierarchy::TraceCapture;
use gmap::trace::stats;

fn traced_cfg() -> SimtConfig {
    let mut cfg = SimtConfig::default();
    cfg.hierarchy.trace_capture = TraceCapture::Full;
    cfg
}

#[test]
fn clone_dram_metrics_track_original() {
    let cfg = traced_cfg();
    for name in ["srad", "blackscholes", "aes"] {
        let kernel = workloads::by_name(name, Scale::Tiny).expect("known");
        let orig = run_original(&kernel, &cfg).expect("valid");
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let proxy = run_proxy(&profile, &cfg).expect("valid");
        let dram_cfg = DramConfig::gddr5_baseline();
        let mo = orig.dram_metrics(dram_cfg);
        let mp = proxy.dram_metrics(dram_cfg);
        assert!(
            mo.requests > 0 && mp.requests > 0,
            "{name}: no DRAM traffic"
        );
        let rbl_err = (mo.rbl - mp.rbl).abs();
        assert!(
            rbl_err < 0.25,
            "{name}: RBL {:.3} vs clone {:.3}",
            mo.rbl,
            mp.rbl
        );
        let lat_err = stats::rel_error(mo.avg_latency(), mp.avg_latency());
        assert!(
            lat_err < 0.5,
            "{name}: latency {:.1} vs clone {:.1} ({:.0}% off)",
            mo.avg_latency(),
            mp.avg_latency(),
            lat_err * 100.0
        );
    }
}

#[test]
fn mapping_schemes_affect_both_equally() {
    let cfg = traced_cfg();
    let kernel = workloads::nw(Scale::Tiny);
    let orig = run_original(&kernel, &cfg).expect("valid");
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let proxy = run_proxy(&profile, &cfg).expect("valid");
    // Compare the direction of the mapping effect: if the original's RBL
    // moves when the mapping changes, the clone's must move the same way.
    let mut robal = DramConfig::gddr5_baseline();
    robal.mapping = AddressMapping::RoBaRaCoCh;
    let mut chraco = DramConfig::gddr5_baseline();
    chraco.mapping = AddressMapping::ChRaBaRoCo;
    let d_orig = orig.dram_metrics(chraco).rbl - orig.dram_metrics(robal).rbl;
    let d_proxy = proxy.dram_metrics(chraco).rbl - proxy.dram_metrics(robal).rbl;
    if d_orig.abs() > 0.05 {
        assert_eq!(
            d_orig.signum(),
            d_proxy.signum(),
            "mapping effect direction differs: orig {d_orig:.3}, proxy {d_proxy:.3}"
        );
    }
}

#[test]
fn memory_traffic_volume_matches() {
    let cfg = traced_cfg();
    let kernel = workloads::cp(Scale::Tiny);
    let orig = run_original(&kernel, &cfg).expect("valid");
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let proxy = run_proxy(&profile, &cfg).expect("valid");
    let ratio = proxy.mem_trace.len() as f64 / orig.mem_trace.len().max(1) as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "memory request volume ratio {ratio:.2} ({} vs {})",
        proxy.mem_trace.len(),
        orig.mem_trace.len()
    );
}
