//! The profile is the shippable artifact: serialization must be lossless
//! and the deserialized profile must generate the identical clone.

use gmap::core::{generate::generate_streams, profile_kernel, GmapProfile, ProfilerConfig};
use gmap::gpu::workloads::{self, Scale};

#[test]
fn json_round_trip_preserves_the_clone() {
    for name in ["kmeans", "bfs", "matrixmul"] {
        let kernel = workloads::by_name(name, Scale::Tiny).expect("known");
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let mut buf = Vec::new();
        profile.save(&mut buf).expect("save");
        let restored = GmapProfile::load(&buf[..]).expect("load");
        assert_eq!(
            profile, restored,
            "{name}: profile must round-trip losslessly"
        );
        assert_eq!(
            generate_streams(&profile, 99),
            generate_streams(&restored, 99),
            "{name}: restored profile must generate the identical clone"
        );
    }
}

#[test]
fn profiles_are_compact() {
    // The whole point of shipping a profile instead of a trace: for the
    // Tiny models the JSON must already be much smaller than the binary
    // trace, and the gap grows with execution length.
    for name in ["kmeans", "blackscholes"] {
        let kernel = workloads::by_name(name, Scale::Tiny).expect("known");
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        let mut json = Vec::new();
        profile.save(&mut json).expect("save");
        let app = gmap::gpu::exec::execute_kernel(&kernel);
        let mut raw = Vec::new();
        gmap::trace::io::write_binary(&mut raw, &app.thread_entries()).expect("write");
        assert!(
            json.len() * 4 < raw.len(),
            "{name}: profile {} B not much smaller than trace {} B",
            json.len(),
            raw.len()
        );
    }
}

#[test]
fn rebase_obfuscation_preserves_behaviour() {
    use gmap::core::{run_proxy, SimtConfig};
    let kernel = workloads::lib(Scale::Tiny);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let mut shifted = profile.clone();
    shifted.rebase(0x4000_0000);
    let cfg = SimtConfig::default();
    let a = run_proxy(&profile, &cfg).expect("valid");
    let b = run_proxy(&shifted, &cfg).expect("valid");
    // Same locality, same cache behaviour — different addresses.
    assert!((a.l1_miss_pct() - b.l1_miss_pct()).abs() < 1.0);
    assert!((a.l2_miss_pct() - b.l2_miss_pct()).abs() < 2.0);
}

#[test]
fn tampered_profile_is_rejected() {
    let kernel = workloads::kmeans(Scale::Tiny);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let mut buf = Vec::new();
    profile.save(&mut buf).expect("save");
    // Truncated JSON must fail to load, not panic.
    let truncated = &buf[..buf.len() / 2];
    assert!(GmapProfile::load(truncated).is_err());
    // Structurally broken profiles fail validation.
    let mut broken = profile.clone();
    broken.base_addrs.clear();
    assert!(broken.validate().is_err());
}
