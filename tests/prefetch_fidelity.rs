//! Single-pass prefetch fidelity regressions (tier-1 gated).
//!
//! The first test is the review scratch case that caught the
//! candidate-equals-demand-line bug: a stride-0 prefetcher emits a
//! candidate identical to the demand line of a missing load, and the
//! single pass used to insert the line twice (candidate fill + demand
//! fill), displacing every other line by one way position. The exact
//! semantics — `Cache::demand_fill` is a no-op on resident lines — are
//! now modeled by re-locating the demand line after the candidate fills.
//! The remaining tests harden the surrounding dedup/merge paths.

use gmap_memsim::cache::{CacheConfig, ReplacementPolicy};
use gmap_memsim::stackdist::{
    evaluate_lru_prefetch_multi, replay_per_config_prefetch, LineAccess, PrefetchSchedule,
    WriteMode,
};

fn lru(size: u64, assoc: u32) -> CacheConfig {
    CacheConfig::new(size, assoc, 64, ReplacementPolicy::Lru).expect("valid")
}

#[test]
fn candidate_equal_to_demand_line_stays_exact() {
    // Single-set caches of assoc 1, 2, 3 (one set-count class).
    let configs = [lru(64, 1), lru(128, 2), lru(192, 3)];
    // Access 1 is a miss carrying a candidate equal to its own line
    // (distance = 0 stride prefetcher emits exactly this).
    let stream = vec![
        LineAccess::new(9, false),
        LineAccess::new(0, false),
        LineAccess::new(9, false),
    ];
    let mut sched = PrefetchSchedule::new();
    sched.push(&[]);
    sched.push(&[0]);
    sched.push(&[]);
    let r = evaluate_lru_prefetch_multi(&configs, &stream, &sched, WriteMode::Allocate).unwrap();
    let reference =
        replay_per_config_prefetch(&configs, &stream, Some(&sched), WriteMode::Allocate);
    assert_eq!(r.counts, reference, "fell_back={}", r.fell_back);
}

#[test]
fn candidate_list_containing_demand_line_twice_stays_exact() {
    let configs = [lru(64, 1), lru(128, 2), lru(192, 3)];
    let stream = vec![
        LineAccess::new(5, false),
        LineAccess::new(1, false),
        LineAccess::new(5, false),
    ];
    let mut sched = PrefetchSchedule::new();
    sched.push(&[]);
    sched.push(&[1, 1]); // duplicate candidates, both equal to the demand
    sched.push(&[]);
    for mode in [WriteMode::Allocate, WriteMode::NoAllocate] {
        let r = evaluate_lru_prefetch_multi(&configs, &stream, &sched, mode).unwrap();
        let reference = replay_per_config_prefetch(&configs, &stream, Some(&sched), mode);
        assert_eq!(r.counts, reference, "mode={mode:?}");
    }
}

#[test]
fn demand_line_pushed_down_by_later_candidates_stays_exact() {
    // The candidate equal to the demand line fills first, then further
    // candidates stack above it: the demand line's final way position is
    // below MRU, and the (no-op) demand fill must not hoist it back.
    let configs = [lru(64, 1), lru(128, 2), lru(192, 3), lru(256, 4)];
    let stream = vec![
        LineAccess::new(7, false),
        LineAccess::new(2, false),
        LineAccess::new(7, false),
        LineAccess::new(3, false),
    ];
    let mut sched = PrefetchSchedule::new();
    sched.push(&[]);
    sched.push(&[2, 3, 4]); // demand line 2 fills, then 3 and 4 land above
    sched.push(&[]);
    sched.push(&[]);
    for mode in [WriteMode::Allocate, WriteMode::NoAllocate] {
        let r = evaluate_lru_prefetch_multi(&configs, &stream, &sched, mode).unwrap();
        let reference = replay_per_config_prefetch(&configs, &stream, Some(&sched), mode);
        assert_eq!(r.counts, reference, "mode={mode:?}");
    }
}

#[test]
fn store_carrying_self_candidate_stays_exact() {
    // Stores apply their state effect before the candidate fills, so a
    // candidate equal to the store's line must see it already resident.
    let configs = [lru(64, 1), lru(128, 2)];
    let stream = vec![LineAccess::new(4, true), LineAccess::new(6, false)];
    let mut sched = PrefetchSchedule::new();
    sched.push(&[4]);
    sched.push(&[]);
    for mode in [WriteMode::Allocate, WriteMode::NoAllocate] {
        let r = evaluate_lru_prefetch_multi(&configs, &stream, &sched, mode).unwrap();
        let reference = replay_per_config_prefetch(&configs, &stream, Some(&sched), mode);
        assert_eq!(r.counts, reference, "mode={mode:?}");
    }
}

#[test]
fn multi_set_class_with_self_candidates_stays_exact() {
    // Two set counts → two classes; self-candidates land in both.
    let configs = [lru(128, 1), lru(256, 2), lru(256, 1), lru(512, 2)];
    let stream: Vec<LineAccess> = [9u64, 0, 9, 2, 0, 9, 4]
        .iter()
        .map(|&l| LineAccess::new(l, false))
        .collect();
    let mut sched = PrefetchSchedule::new();
    for (i, acc) in stream.iter().enumerate() {
        if i % 2 == 1 {
            sched.push(&[acc.line, acc.line + 1]);
        } else {
            sched.push(&[]);
        }
    }
    for mode in [WriteMode::Allocate, WriteMode::NoAllocate] {
        let r = evaluate_lru_prefetch_multi(&configs, &stream, &sched, mode).unwrap();
        let reference = replay_per_config_prefetch(&configs, &stream, Some(&sched), mode);
        assert_eq!(r.counts, reference, "mode={mode:?}");
    }
}
