//! Workspace determinism lint, run as a tier-1 test and a CI gate.
//!
//! The simulation crates must produce bit-identical results across runs
//! and platforms, so iterating a `HashMap`/`HashSet` in them is a bug
//! unless the site provably derives an order-independent result — those
//! sites are recorded in `scripts/determinism_allowlist.txt` with a
//! justification. See `gmap_analyze::detlint` for the lint itself.

use gmap::analyze::detlint::{lint_crates, parse_allowlist};
use std::path::Path;

/// The crates whose outputs are part of the deterministic contract:
/// profiles, clone traces, simulation statistics, and the service layer
/// (responses must be byte-identical to direct library calls). `trace`
/// joined the list with the SoA capture columns and batch kernels — the
/// columns feed every downstream hit-rate count, so ordering there is
/// load-bearing too. `ingest` joined with the streaming profiler: its
/// output must be byte-identical to the materialize-then-profile path,
/// and its heat-map report is content-keyed.
const SIMULATION_CRATES: &[&str] = &["memsim", "gpu", "dram", "core", "serve", "trace", "ingest"];

#[test]
fn simulation_crates_do_not_iterate_hash_maps() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow_text = std::fs::read_to_string(root.join("scripts/determinism_allowlist.txt"))
        .expect("allowlist readable");
    let allow = parse_allowlist(&allow_text);
    assert!(
        allow.iter().all(|e| !e.justification.is_empty()),
        "every allowlist entry needs a justification"
    );
    let findings = lint_crates(root, SIMULATION_CRATES, &allow).expect("crates lintable");
    assert!(
        findings.is_empty(),
        "nondeterministic hash iteration in simulation crates \
         (sort the keys, switch to BTreeMap, or justify the site in \
         scripts/determinism_allowlist.txt):\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_entries_are_not_stale() {
    // Every allowlisted site must still exist: the file must be lintable
    // and actually contain the named binding. Stale entries rot into
    // blanket permissions for future code.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow_text = std::fs::read_to_string(root.join("scripts/determinism_allowlist.txt"))
        .expect("allowlist readable");
    for entry in parse_allowlist(&allow_text) {
        let path = root.join(&entry.file);
        let source = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("allowlisted file {} unreadable: {e}", entry.file));
        assert!(
            source.contains(&entry.binding),
            "allowlist entry {}:{} names a binding that no longer exists",
            entry.file,
            entry.binding
        );
    }
}
