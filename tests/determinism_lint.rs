//! Workspace determinism lint, run as a tier-1 test and a CI gate.
//!
//! The simulation crates must produce bit-identical results across runs
//! and platforms, so iterating a `HashMap`/`HashSet` in them is a bug
//! unless the site provably derives an order-independent result — those
//! sites are recorded in `scripts/determinism_allowlist.txt` with a
//! justification. See `gmap_analyze::detlint` for the lint itself.

use gmap::analyze::detlint::{lint_dirs, parse_allowlist, stale_entries};
use std::path::Path;

/// The source roots whose outputs are part of the deterministic
/// contract: profiles, clone traces, simulation statistics, and the
/// service layer (responses must be byte-identical to direct library
/// calls). `trace` joined the list with the SoA capture columns and
/// batch kernels — the columns feed every downstream hit-rate count, so
/// ordering there is load-bearing too. `ingest` joined with the
/// streaming profiler: its output must be byte-identical to the
/// materialize-then-profile path, and its heat-map report is
/// content-keyed. `analyze` joined with the race detector (verdict and
/// witness selection must be reproducible — findings gate admission and
/// fail CI), `bench` with the sweep engine (figure data is diffed
/// against golden files), and the top-level `src` because the CLI
/// renders reports that scripts diff. The `serve` root also covers the
/// consistent-hash shard ring (`shard.rs`): replica placement must be
/// identical on every node, so the ring is a sorted point array scanned
/// in order — no hash-map iteration to allowlist.
const LINTED_DIRS: &[&str] = &[
    "crates/memsim/src",
    "crates/gpu/src",
    "crates/dram/src",
    "crates/core/src",
    "crates/serve/src",
    "crates/trace/src",
    "crates/ingest/src",
    "crates/analyze/src",
    "crates/bench/src",
    "src",
];

fn allowlist_text(root: &Path) -> String {
    std::fs::read_to_string(root.join("scripts/determinism_allowlist.txt"))
        .expect("allowlist readable")
}

#[test]
fn simulation_crates_do_not_iterate_hash_maps() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow = parse_allowlist(&allowlist_text(root));
    assert!(
        allow.iter().all(|e| !e.justification.is_empty()),
        "every allowlist entry needs a justification"
    );
    let findings = lint_dirs(root, LINTED_DIRS, &allow).expect("roots lintable");
    assert!(
        findings.is_empty(),
        "nondeterministic hash iteration in deterministic-contract code \
         (sort the keys, switch to BTreeMap, or justify the site in \
         scripts/determinism_allowlist.txt):\n{}",
        findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn allowlist_entries_each_suppress_a_live_finding() {
    // Every allowlist entry must still match a finding the lint would
    // otherwise raise: lint with an *empty* allowlist for ground truth,
    // then demand each entry suppresses at least one of those findings.
    // An entry whose site was fixed, renamed, or moved rots into a
    // blanket permission for whatever next reuses the binding name.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow = parse_allowlist(&allowlist_text(root));
    let ground_truth = lint_dirs(root, LINTED_DIRS, &[]).expect("roots lintable");
    let stale = stale_entries(&ground_truth, &allow);
    assert!(
        stale.is_empty(),
        "stale determinism-allowlist entries (they no longer suppress any \
         finding — delete them from scripts/determinism_allowlist.txt):\n{}",
        stale
            .iter()
            .map(|e| format!("{}:{}  {}", e.file, e.binding, e.justification))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
