//! Integration tests of miniaturization (§4.6 / Fig. 8): accuracy is
//! retained at moderate factors and the simulated volume shrinks.

use gmap::core::{
    generate::{expected_accesses, generate_streams},
    miniaturize, profile_kernel, run_original, simulate_streams, ProfilerConfig, SimtConfig,
};
use gmap::gpu::workloads::{self, Scale};

#[test]
fn moderate_factors_keep_accuracy() {
    let cfg = SimtConfig::default();
    for name in ["scalarprod", "kmeans", "srad"] {
        let kernel = workloads::by_name(name, Scale::Small).expect("known");
        let orig = run_original(&kernel, &cfg).expect("valid");
        let profile = profile_kernel(&kernel, &ProfilerConfig::default());
        for factor in [2.0, 4.0] {
            let mini = miniaturize(&profile, factor).expect("valid factor");
            let streams = generate_streams(&mini, 7);
            let out = simulate_streams(&streams, &mini.launch, &cfg).expect("valid");
            let err = (orig.l1_miss_pct() - out.l1_miss_pct()).abs();
            assert!(
                err < 25.0,
                "{name} @ {factor}x: miss {:.2}% vs {:.2}% (err {err:.2}pp)",
                orig.l1_miss_pct(),
                out.l1_miss_pct()
            );
        }
    }
}

#[test]
fn volume_shrinks_with_factor() {
    let kernel = workloads::blackscholes(Scale::Small);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let mut last = expected_accesses(&profile);
    for factor in [2.0, 4.0, 8.0, 16.0] {
        let mini = miniaturize(&profile, factor).expect("valid factor");
        let n = expected_accesses(&mini);
        assert!(n < last, "factor {factor}: {n} accesses not below {last}");
        last = n;
    }
}

#[test]
fn miniaturized_clone_simulates_faster_in_accesses() {
    // The speedup axis of Fig. 8 comes from volume: check the simulated
    // instruction counts scale accordingly.
    let kernel = workloads::fwt(Scale::Small);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let cfg = SimtConfig::default();
    let full = generate_streams(&profile, 3);
    let full_out = simulate_streams(&full, &profile.launch, &cfg).expect("valid");
    let mini = miniaturize(&profile, 8.0).expect("valid factor");
    let mini_streams = generate_streams(&mini, 3);
    let mini_out = simulate_streams(&mini_streams, &mini.launch, &cfg).expect("valid");
    let ratio =
        full_out.schedule.issued_accesses as f64 / mini_out.schedule.issued_accesses.max(1) as f64;
    assert!(
        ratio > 3.0,
        "8x miniaturization only cut issued accesses by {ratio:.2}x"
    );
}

#[test]
fn scale_up_produces_larger_clones() {
    let kernel = workloads::nw(Scale::Tiny);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let up = miniaturize(&profile, 0.5).expect("valid factor");
    let streams = generate_streams(&up, 3);
    assert!(
        streams.len() > generate_streams(&profile, 3).len(),
        "scale-up must add warps"
    );
}
