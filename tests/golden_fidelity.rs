//! Golden-fidelity harness: freezes the exact metric series every figure
//! grid produces through the single-pass sweep engine, so an engine
//! refactor that silently changes a number fails loudly.
//!
//! Each figure grid gets one JSON file under `tests/golden/` holding,
//! per benchmark, the original and proxy metric series at `Scale::Tiny`,
//! seed 42. The comparison tolerance is 1e-12 — far below any modeling
//! error, so only true behavioural drift trips it (the engine is
//! deterministic; the slack covers nothing but JSON number formatting).
//!
//! Regenerate after an *intentional* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_fidelity
//! ```
//!
//! and review the diff like any other code change.

use gmap::bench::{engine, parallel_map, prepare, sweeps, BenchData, Metric};
use gmap::core::SimtConfig;
use gmap::gpu::workloads::{self, Scale};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 42;
const TOLERANCE: f64 = 1e-12;

/// One benchmark's frozen series: the metric per grid config, original
/// and proxy streams separately.
#[derive(Debug, Serialize, Deserialize)]
struct SeriesPair {
    original: Vec<f64>,
    proxy: Vec<f64>,
}

/// One figure grid's golden file.
#[derive(Debug, Serialize, Deserialize)]
struct GoldenFigure {
    grid: String,
    metric: String,
    scale: String,
    seed: u64,
    configs: usize,
    /// BTreeMap so the serialized file is stable under regeneration.
    benchmarks: BTreeMap<String, SeriesPair>,
}

fn golden_path(grid: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{grid}.json"))
}

fn metric_name(metric: Metric) -> &'static str {
    match metric {
        Metric::L1MissPct => "l1_miss_pct",
        Metric::L2MissPct => "l2_miss_pct",
    }
}

/// The figure grids under golden control — the same five the perf
/// tracker gates on.
fn grids() -> Vec<(&'static str, Vec<SimtConfig>, Metric)> {
    vec![
        ("fig6a_l1", sweeps::l1_sweep(), Metric::L1MissPct),
        ("fig6b_l2", sweeps::l2_sweep(), Metric::L2MissPct),
        (
            "fig6c_l1_prefetch",
            sweeps::l1_prefetch_sweep(),
            Metric::L1MissPct,
        ),
        (
            "fig6d_l2_prefetch",
            sweeps::l2_prefetch_sweep(),
            Metric::L2MissPct,
        ),
        (
            "fig6e_replacement",
            sweeps::replacement_policy_sweep(),
            Metric::L1MissPct,
        ),
    ]
}

fn compute_figure(
    data: &[Arc<BenchData>],
    threads: usize,
    grid: &str,
    configs: &[SimtConfig],
    metric: Metric,
) -> GoldenFigure {
    let plan = engine::plan_single_pass(configs, metric)
        .unwrap_or_else(|| panic!("{grid} must plan single-pass"));
    let rows = parallel_map(data, threads, |d| {
        let cmp = engine::sweep_benchmark_single_pass(d, &plan, configs);
        (
            d.kernel.name.clone(),
            SeriesPair {
                original: cmp.original,
                proxy: cmp.proxy,
            },
        )
    });
    GoldenFigure {
        grid: grid.to_string(),
        metric: metric_name(metric).to_string(),
        scale: "tiny".to_string(),
        seed: SEED,
        configs: configs.len(),
        benchmarks: rows.into_iter().collect(),
    }
}

fn assert_matches_golden(grid: &str, got: &GoldenFigure, want: &GoldenFigure) {
    assert_eq!(got.metric, want.metric, "{grid}: metric changed");
    assert_eq!(got.configs, want.configs, "{grid}: grid size changed");
    assert_eq!(got.seed, want.seed, "{grid}: seed changed");
    let got_names: Vec<&String> = got.benchmarks.keys().collect();
    let want_names: Vec<&String> = want.benchmarks.keys().collect();
    assert_eq!(got_names, want_names, "{grid}: benchmark set changed");
    for (name, got_pair) in &got.benchmarks {
        let want_pair = &want.benchmarks[name];
        for (stream, got_series, want_series) in [
            ("original", &got_pair.original, &want_pair.original),
            ("proxy", &got_pair.proxy, &want_pair.proxy),
        ] {
            assert_eq!(
                got_series.len(),
                want_series.len(),
                "{grid}/{name}/{stream}: series length changed"
            );
            for (i, (g, w)) in got_series.iter().zip(want_series).enumerate() {
                assert!(
                    (g - w).abs() <= TOLERANCE,
                    "{grid}/{name}/{stream}[{i}]: {g} drifted from golden {w} \
                     (rerun with UPDATE_GOLDEN=1 if the change is intentional)"
                );
            }
        }
    }
}

/// The harness proper: every figure grid's single-pass series, for every
/// one of the 18 benchmarks, must match the checked-in goldens bit-close.
/// With `UPDATE_GOLDEN=1` the goldens are rewritten instead.
#[test]
fn figure_series_match_goldens() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);

    let names: Vec<&str> = workloads::NAMES.to_vec();
    let data = parallel_map(&names, threads, |name| {
        Arc::new(prepare(name, Scale::Tiny, SEED))
    });

    // One capture pair per benchmark serves all five grids; fresh counts
    // keep the cross-figure reuse claim itself under golden control.
    engine::capture_cache_clear();
    for (grid, configs, metric) in grids() {
        let got = compute_figure(&data, threads, grid, &configs, metric);
        let path = golden_path(grid);
        if update {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
            let json = serde_json::to_string_pretty(&got).expect("golden serializes");
            std::fs::write(&path, json + "\n").expect("golden file is writable");
            continue;
        }
        let raw = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); generate it with \
                 UPDATE_GOLDEN=1 cargo test --test golden_fidelity",
                path.display()
            )
        });
        let want: GoldenFigure = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("golden {} is corrupt: {e}", path.display()));
        assert_matches_golden(grid, &got, &want);
    }
    let stats = engine::capture_cache_stats();
    assert_eq!(
        stats.misses,
        2 * names.len() as u64,
        "every grid shares one capture pair per benchmark"
    );
    engine::capture_cache_clear();
}
