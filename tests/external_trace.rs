//! G-MAP accepts traces from ANY front end, not just the bundled
//! execution substrate: this test builds warp streams by hand (as a
//! third-party tracing tool would) and runs the full profile → clone →
//! simulate pipeline on them.

use gmap::core::{
    generate::generate_streams, profile_streams, simulate_streams, ProfilerConfig, SimtConfig,
};
use gmap::gpu::hierarchy::LaunchConfig;
use gmap::gpu::schedule::{CoalescedAccess, WarpStream, WarpStreamEvent};
use gmap::trace::record::{AccessKind, ByteAddr, Pc, WarpId};

/// A hand-written "trace": 16 warps, each streaming 64 lines at a fixed
/// inter-warp offset, plus a strided second instruction.
fn handmade_streams() -> (Vec<WarpStream>, LaunchConfig) {
    let launch = LaunchConfig::new(4u32, 128u32); // 16 warps
    let streams = (0..16u32)
        .map(|w| {
            let base = 0x10_0000 + w as u64 * 128;
            let events = (0..64u64)
                .flat_map(|j| {
                    vec![
                        WarpStreamEvent::Access(CoalescedAccess {
                            pc: Pc(0xA0),
                            kind: AccessKind::Read,
                            lines: vec![ByteAddr(base + j * 2048)],
                        }),
                        WarpStreamEvent::Access(CoalescedAccess {
                            pc: Pc(0xB0),
                            kind: AccessKind::Write,
                            lines: vec![ByteAddr(0x80_0000 + w as u64 * 128 + j * 4096)],
                        }),
                    ]
                })
                .collect();
            WarpStream {
                warp: WarpId(w),
                block: w / 4,
                events,
            }
        })
        .collect();
    (streams, launch)
}

#[test]
fn external_streams_profile_and_clone() {
    let (streams, launch) = handmade_streams();
    let profile = profile_streams(
        "handmade",
        &streams,
        &launch,
        32,
        &ProfilerConfig::default(),
    )
    .expect("valid streams");
    assert_eq!(profile.num_slots(), 2);
    // The captured statistics match construction.
    let a = profile.slot_of(Pc(0xA0)).expect("profiled");
    let b = profile.slot_of(Pc(0xB0)).expect("profiled");
    assert_eq!(
        profile.inter_stride[a].dominant().expect("non-empty").0,
        128
    );
    assert_eq!(
        profile.intra_stride[a].dominant().expect("non-empty").0,
        2048
    );
    assert_eq!(
        profile.intra_stride[b].dominant().expect("non-empty").0,
        4096
    );
    assert_eq!(profile.kinds[b], AccessKind::Write);

    // Clone and simulate both against the same configuration.
    let clone = generate_streams(&profile, 5);
    assert_eq!(clone.len(), streams.len());
    let cfg = SimtConfig::default();
    let orig = simulate_streams(&streams, &launch, &cfg).expect("valid");
    let prox = simulate_streams(&clone, &launch, &cfg).expect("valid");
    let err = (orig.l1_miss_pct() - prox.l1_miss_pct()).abs();
    assert!(err < 5.0, "handmade clone error {err:.2}pp");
}

#[test]
fn text_trace_round_trip_through_profiling() {
    // Per-thread text trace -> parse -> warp streams -> profile.
    let mut text = String::from("# tid pc kind addr\n");
    for warp in 0..8u32 {
        for lane in 0..32u32 {
            let tid = warp * 32 + lane;
            let addr = 0x1000 + (tid as u64) * 4;
            text.push_str(&format!("{tid} 0x42 R {addr:#x}\n"));
        }
    }
    let entries = gmap::trace::io::read_text(text.as_bytes()).expect("parse");
    assert_eq!(entries.len(), 256);
    // Group into coalesced warp streams (one access per thread; unit
    // stride means one 128 B transaction per warp).
    let streams: Vec<WarpStream> = (0..8u32)
        .map(|w| {
            let addrs: Vec<ByteAddr> = entries
                .iter()
                .filter(|(tid, _)| tid.0 / 32 == w)
                .map(|(_, acc)| acc.addr)
                .collect();
            let lines = gmap::gpu::coalesce::coalesce_addrs(&addrs, 128);
            assert_eq!(lines.len(), 1, "unit stride coalesces to one line");
            WarpStream {
                warp: WarpId(w),
                block: w / 8,
                events: vec![WarpStreamEvent::Access(CoalescedAccess {
                    pc: Pc(0x42),
                    kind: AccessKind::Read,
                    lines,
                })],
            }
        })
        .collect();
    let launch = LaunchConfig::new(1u32, 256u32);
    let profile = profile_streams("text", &streams, &launch, 32, &ProfilerConfig::default())
        .expect("valid streams");
    assert_eq!(
        profile.inter_stride[0].dominant().expect("non-empty").0,
        128
    );
}
