//! Multi-kernel applications (paper §2.2): profile a kernel *sequence*,
//! clone it, and check that inter-kernel cache warming is reproduced.
//!
//! ```text
//! cargo run --release --example multi_kernel
//! ```

use gmap::core::{
    profile_application, run_application_original, run_application_proxy, GmapError,
    ProfilerConfig, SimtConfig,
};
use gmap::gpu::app::apps;
use gmap::gpu::workloads::Scale;
use gmap::memsim::hierarchy::TraceCapture;

fn main() -> Result<(), GmapError> {
    let app = apps::kmeans_iterative(Scale::Small);
    println!("application : {} ({} kernels)", app.name, app.kernels.len());
    for k in &app.kernels {
        println!(
            "  kernel {:<16} {} blocks x {} threads",
            k.name,
            k.launch.num_blocks(),
            k.launch.threads_per_block()
        );
    }

    let mut cfg = SimtConfig::default();
    cfg.hierarchy.trace_capture = TraceCapture::Full;

    // Original: kernels share one hierarchy, so kernel 3 (kmeans again)
    // starts with whatever kernel 1 left in the L2.
    let orig = run_application_original(&app, &cfg)?;

    // Clone: per-kernel profiles, replayed in order on a shared hierarchy.
    let profile = profile_application(&app, &ProfilerConfig::default());
    let mut shipped = Vec::new();
    profile.save(&mut shipped)?;
    println!(
        "\nshipped app profile: {} bytes for {} kernels",
        shipped.len(),
        profile.kernels.len()
    );
    let proxy = run_application_proxy(&profile, &cfg)?;

    println!("\n--- per-kernel cycles (original vs clone) ---");
    for (i, (o, p)) in orig.per_kernel.iter().zip(&proxy.per_kernel).enumerate() {
        println!(
            "kernel {} : {:>9} vs {:>9} cycles   ({:>7} vs {:>7} accesses)",
            i, o.cycles, p.cycles, o.issued_accesses, p.issued_accesses
        );
    }
    println!("\n--- whole application ---");
    println!(
        "L1 miss rate : {:6.2}%  vs clone {:6.2}%",
        orig.total.stats.l1_miss_rate() * 100.0,
        proxy.total.stats.l1_miss_rate() * 100.0
    );
    println!(
        "L2 miss rate : {:6.2}%  vs clone {:6.2}%",
        orig.total.stats.l2_miss_rate() * 100.0,
        proxy.total.stats.l2_miss_rate() * 100.0
    );
    println!(
        "DRAM traffic : {:>8} vs clone {:>8} requests",
        orig.total.mem_trace.len(),
        proxy.total.mem_trace.len()
    );
    Ok(())
}
