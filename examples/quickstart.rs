//! Quickstart: profile one application, clone it, and compare cache
//! behaviour on the Table 2 baseline configuration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gmap::core::{
    generate::expected_accesses, profile_kernel, run_original, run_proxy, GmapError,
    ProfilerConfig, SimtConfig,
};
use gmap::gpu::workloads::{self, Scale};

fn main() -> Result<(), GmapError> {
    // 1. The "application" — one of the 18 synthetic benchmark models.
    let kernel = workloads::kmeans(Scale::Small);
    println!("application      : {}", kernel.name);
    println!(
        "launch           : {} blocks x {} threads",
        kernel.launch.num_blocks(),
        kernel.launch.threads_per_block()
    );
    println!("footprint        : {} KiB", kernel.footprint_bytes() / 1024);

    // 2. Run the original through the scheduler + cache hierarchy.
    let cfg = SimtConfig::default();
    let original = run_original(&kernel, &cfg)?;

    // 3. Profile it: the statistical 5-tuple (Π, Q, B, P_S, P_R).
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    println!("\n--- statistical profile ---");
    println!("static PCs       : {}", profile.num_slots());
    println!("pi profiles      : {}", profile.profiles.len());
    println!("warp accesses    : {}", profile.total_warp_accesses);
    for (i, pc) in profile.pcs.iter().enumerate() {
        let freq = profile.slot_frequencies()[i] * 100.0;
        let inter = profile.inter_stride[i].dominant();
        let intra = profile.intra_stride[i].dominant();
        println!(
            "  {pc}: freq {freq:5.1}%  inter-warp {:>8}  intra-warp {:>8}",
            inter.map_or("-".to_owned(), |(s, f)| format!("{s}B@{:.0}%", f * 100.0)),
            intra.map_or("-".to_owned(), |(s, f)| format!("{s}B@{:.0}%", f * 100.0)),
        );
    }

    // 4. Regenerate a clone from the profile alone and simulate it.
    let clone = run_proxy(&profile, &cfg)?;
    println!("\n--- original vs clone (Table 2 baseline) ---");
    println!("clone accesses   : {}", expected_accesses(&profile));
    println!(
        "L1 miss rate     : {:6.2}%  vs clone {:6.2}%  (error {:.2} pp)",
        original.l1_miss_pct(),
        clone.l1_miss_pct(),
        (original.l1_miss_pct() - clone.l1_miss_pct()).abs()
    );
    println!(
        "L2 miss rate     : {:6.2}%  vs clone {:6.2}%  (error {:.2} pp)",
        original.l2_miss_pct(),
        clone.l2_miss_pct(),
        (original.l2_miss_pct() - clone.l2_miss_pct()).abs()
    );
    println!(
        "memory reads     : {:>8}  vs clone {:>8}",
        original.stats.mem_reads, clone.stats.mem_reads
    );
    Ok(())
}
