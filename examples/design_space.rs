//! Design-space exploration with proxies: sweep L1 cache designs using
//! only the clone, and check that it ranks the candidates the way the
//! original application would ("for design space exploration, computer
//! architects care about relative performance ranking", §5).
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use gmap::core::{
    compare_series, generate::generate_streams, profile_kernel, run_original, simulate_streams,
    GmapError, ProfilerConfig, SimtConfig,
};
use gmap::gpu::workloads::{self, Scale};
use gmap::memsim::cache::{CacheConfig, ReplacementPolicy};

fn main() -> Result<(), GmapError> {
    let kernel = workloads::backprop(Scale::Small);
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let clone_streams = generate_streams(&profile, 42);

    // Candidate L1 designs: size x associativity.
    let sizes_kb = [8u64, 16, 32, 64, 128];
    let assocs = [2u32, 8];
    println!(
        "sweeping {} L1 designs for '{}'\n",
        sizes_kb.len() * assocs.len(),
        kernel.name
    );
    println!(
        "{:<18} {:>12} {:>12}",
        "L1 design", "orig miss%", "clone miss%"
    );

    let mut orig_series = Vec::new();
    let mut clone_series = Vec::new();
    let mut labels = Vec::new();
    for &kb in &sizes_kb {
        for &assoc in &assocs {
            let mut cfg = SimtConfig::default();
            cfg.hierarchy.l1 = CacheConfig::new(kb * 1024, assoc, 128, ReplacementPolicy::Lru)?;
            let orig = run_original(&kernel, &cfg)?;
            let clone = simulate_streams(&clone_streams, &profile.launch, &cfg)?;
            println!(
                "{:<18} {:>11.2}% {:>11.2}%",
                format!("{kb}KB {assoc}-way"),
                orig.l1_miss_pct(),
                clone.l1_miss_pct()
            );
            labels.push(format!("{kb}KB {assoc}-way"));
            orig_series.push(orig.l1_miss_pct());
            clone_series.push(clone.l1_miss_pct());
        }
    }

    let cmp = compare_series(&kernel.name, orig_series.clone(), clone_series.clone());
    println!("\nmean abs error    : {:.2} pp", cmp.mean_abs_err);
    println!("Pearson correlation: {:.3}", cmp.correlation);

    // Ranking agreement: does the clone pick the same best design?
    let best = |xs: &[f64]| {
        xs.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    };
    let (bo, bc) = (best(&orig_series), best(&clone_series));
    println!(
        "best by original  : {}\nbest by clone     : {}{}",
        labels[bo],
        labels[bc],
        if bo == bc { "  (agreement)" } else { "" }
    );
    Ok(())
}
