//! Trace miniaturization (§4.6, Figure 8): scale a clone down by 1–16×,
//! measuring cloning accuracy against the full original and the reduction
//! in simulated accesses (which is what buys simulation speedup).
//!
//! ```text
//! cargo run --release --example miniaturization
//! ```

use gmap::core::{
    generate::{expected_accesses, generate_streams},
    miniaturize, profile_kernel, run_original, simulate_streams, GmapError, ProfilerConfig,
    SimtConfig,
};
use gmap::gpu::workloads::{self, Scale};
use std::time::Instant;

fn main() -> Result<(), GmapError> {
    let kernel = workloads::srad(Scale::Small);
    let cfg = SimtConfig::default();
    let original = run_original(&kernel, &cfg)?;
    let profile = profile_kernel(&kernel, &ProfilerConfig::default());
    let full_accesses = expected_accesses(&profile) as f64;

    println!("application        : {}", kernel.name);
    println!("original L1 miss   : {:.2}%\n", original.l1_miss_pct());
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>12}",
        "factor", "accesses", "reduction", "miss err pp", "sim time ms"
    );
    for factor in [1.0, 2.0, 4.0, 8.0, 16.0] {
        let mini = miniaturize(&profile, factor)?;
        let streams = generate_streams(&mini, 7);
        let t0 = Instant::now();
        let out = simulate_streams(&streams, &mini.launch, &cfg)?;
        let elapsed = t0.elapsed().as_secs_f64() * 1e3;
        let err = (original.l1_miss_pct() - out.l1_miss_pct()).abs();
        let accesses = expected_accesses(&mini);
        println!(
            "{factor:>7.0} {accesses:>12} {:>11.1}x {err:>12.2} {elapsed:>12.2}",
            full_accesses / accesses as f64
        );
    }
    println!("\nAs in Fig. 8: simulation cost falls ~linearly with the factor while");
    println!("accuracy degrades slowly, with a knee once the statistics get thin.");
    Ok(())
}
