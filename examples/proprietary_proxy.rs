//! The paper's motivating scenario (§1): a workload owner cannot share a
//! proprietary application or its traces, but CAN share a G-MAP profile —
//! a few kilobytes of histograms with obfuscated base addresses — from
//! which an architect regenerates a behaviourally equivalent clone.
//!
//! ```text
//! cargo run --release --example proprietary_proxy
//! ```

use gmap::core::{
    profile_kernel, run_original, run_proxy, GmapError, GmapProfile, ProfilerConfig, SimtConfig,
};
use gmap::gpu::exec::execute_kernel;
use gmap::gpu::workloads::{self, Scale};
use gmap::trace::io;

fn main() -> Result<(), GmapError> {
    // ---------------- Site A: the workload owner -------------------------
    let secret_app = workloads::lib(Scale::Small); // "proprietary" kernel
    let mut profile = profile_kernel(&secret_app, &ProfilerConfig::default());

    // Obfuscate: shift every base address. Locality is translation-
    // invariant, so the clone's cache behaviour is unchanged while the
    // original address space is hidden (§4.2).
    profile.rebase(0x7F00_0000);

    // What would have to be shipped WITHOUT G-MAP: the raw trace.
    let app = execute_kernel(&secret_app);
    let entries = app.thread_entries();
    let mut raw_trace = Vec::new();
    io::write_binary(&mut raw_trace, &entries)?;

    // What is shipped WITH G-MAP: the JSON profile.
    let mut shipped = Vec::new();
    profile.save(&mut shipped)?;
    println!(
        "raw trace size    : {:>10} bytes ({} accesses)",
        raw_trace.len(),
        entries.len()
    );
    println!("shipped profile   : {:>10} bytes", shipped.len());
    println!(
        "reduction         : {:.0}x smaller\n",
        raw_trace.len() as f64 / shipped.len() as f64
    );

    // ---------------- Site B: the memory-system architect ----------------
    let received = GmapProfile::load(&shipped[..])?;
    received.validate()?;
    println!(
        "received profile  : '{}', {} PCs, {} pi profiles",
        received.name,
        received.num_slots(),
        received.profiles.len()
    );

    // The architect evaluates THE CLONE on candidate designs. For
    // validation we also run the original here — in the real scenario only
    // the owner could do that.
    let cfg = SimtConfig::default();
    let clone_result = run_proxy(&received, &cfg)?;
    let original_result = run_original(&secret_app, &cfg)?;

    println!("\n--- fidelity check (architect never saw the original) ---");
    println!(
        "L1 miss rate      : original {:.2}%  clone {:.2}%",
        original_result.l1_miss_pct(),
        clone_result.l1_miss_pct()
    );
    println!(
        "L2 miss rate      : original {:.2}%  clone {:.2}%",
        original_result.l2_miss_pct(),
        clone_result.l2_miss_pct()
    );

    // And the clone provably lives in a different address space:
    let orig_first = entries.first().map(|(_, a)| a.addr.0).unwrap_or(0);
    println!(
        "\naddress spaces    : original starts near {orig_first:#x}, clone bases at {:#x}",
        received.base_addrs[0].0
    );
    Ok(())
}
